"""Directed triad count features (paper Sec. 3.1).

For a tie ``(u, v)`` and a common neighbour ``w``, the ties ``(w, u)``
and ``(w, v)`` each take one of four *types* relative to ``w``:

======  =============================================
type    meaning for the pair ``(w, x)``
======  =============================================
0       directed tie ``w → x``
1       directed tie ``x → w``
2       bidirectional tie
3       undirected tie (direction unknown)
======  =============================================

The triad type of ``(u, v, w)`` is ``type(w, u) * 4 + type(w, v)``,
giving ``4 × 4 = 16`` counts ``ee_1 .. ee_16``.  The orientation of
``(u, v)`` itself is *not* used (its direction may be the unknown being
predicted).

The type codes deliberately coincide with :class:`repro.graph.TieKind`
numeric values, so classification is a single kind-array lookup.
"""

from __future__ import annotations

import numpy as np

from ..graph import MixedSocialNetwork

N_TRIAD_TYPES = 16
TRIAD_FEATURE_NAMES = tuple(f"ee_{i + 1}" for i in range(N_TRIAD_TYPES))


def triad_counts_for_tie(
    network: MixedSocialNetwork, u: int, v: int
) -> np.ndarray:
    """The 16 directed-triad counts for the tie ``(u, v)``."""
    counts = np.zeros(N_TRIAD_TYPES, dtype=np.int64)
    for w in network.common_neighbors(int(u), int(v)):
        w = int(w)
        type_wu = int(network.tie_kind[network.tie_id(w, u)])
        type_wv = int(network.tie_kind[network.tie_id(w, v)])
        counts[type_wu * 4 + type_wv] += 1
    return counts


def reverse_triad_counts(counts: np.ndarray) -> np.ndarray:
    """Triad counts of ``(v, u)`` from those of ``(u, v)``.

    Swapping the endpoints swaps the roles of ``(w, u)`` and ``(w, v)``,
    i.e. transposes the 4×4 type grid.
    """
    grid = counts.reshape(*counts.shape[:-1], 4, 4)
    return np.swapaxes(grid, -1, -2).reshape(counts.shape)


def triad_features(
    network: MixedSocialNetwork, pairs: np.ndarray
) -> np.ndarray:
    """Triad count feature block for the ``(k, 2)`` node pairs.

    Pairs that appear in both orientations are computed once and
    transposed for the reverse orientation.
    """
    cache: dict[tuple[int, int], np.ndarray] = {}
    rows = np.empty((len(pairs), N_TRIAD_TYPES), dtype=np.int64)
    for i, (u, v) in enumerate(pairs):
        u, v = int(u), int(v)
        if (u, v) in cache:
            rows[i] = cache[(u, v)]
            continue
        counts = triad_counts_for_tie(network, u, v)
        cache[(u, v)] = counts
        cache[(v, u)] = reverse_triad_counts(counts)
        rows[i] = counts
    return rows
