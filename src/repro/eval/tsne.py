"""Exact t-SNE (van der Maaten & Hinton 2008) for the Fig. 7 visualisation.

scipy has no t-SNE and scikit-learn is not a dependency, so this is a
compact exact-gradient implementation: Gaussian input affinities with a
per-point perplexity binary search, Student-t output affinities, and
gradient descent with momentum and early exaggeration.  Adequate for the
~10³ tie embeddings the paper projects; not intended for large n (the
gradient is O(n²)).
"""

from __future__ import annotations

import numpy as np

from ..utils import ensure_rng


def _pairwise_sq_distances(points: np.ndarray) -> np.ndarray:
    sq = (points**2).sum(axis=1)
    d = sq[:, None] + sq[None, :] - 2.0 * points @ points.T
    np.maximum(d, 0.0, out=d)
    np.fill_diagonal(d, 0.0)
    return d


def _conditional_probabilities(
    distances: np.ndarray, perplexity: float, tol: float = 1e-5
) -> np.ndarray:
    """Row-wise Gaussian affinities whose entropy matches ``perplexity``."""
    n = len(distances)
    target_entropy = np.log(perplexity)
    probabilities = np.zeros((n, n))
    for i in range(n):
        row = np.delete(distances[i], i)
        beta_lo, beta_hi = 0.0, np.inf
        beta = 1.0
        for _ in range(64):
            weights = np.exp(-row * beta)
            total = weights.sum()
            if total <= 0:
                entropy, p_row = 0.0, weights
            else:
                p_row = weights / total
                entropy = float(
                    -(p_row[p_row > 0] * np.log(p_row[p_row > 0])).sum()
                )
            if abs(entropy - target_entropy) < tol:
                break
            if entropy > target_entropy:
                beta_lo = beta
                beta = beta * 2.0 if beta_hi == np.inf else (beta + beta_hi) / 2
            else:
                beta_hi = beta
                beta = (beta + beta_lo) / 2
        p_full = np.insert(p_row, i, 0.0)
        probabilities[i] = p_full
    return probabilities


def tsne(
    points: np.ndarray,
    n_components: int = 2,
    perplexity: float = 30.0,
    n_iter: int = 400,
    learning_rate: float = 200.0,
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """Project ``points`` to ``n_components`` dimensions with exact t-SNE.

    Parameters mirror the standard implementation; early exaggeration
    (×4) runs for the first quarter of the iterations.
    """
    points = np.asarray(points, dtype=float)
    n = len(points)
    if n < 5:
        raise ValueError("t-SNE needs at least 5 points")
    perplexity = min(perplexity, (n - 1) / 3.0)
    rng = ensure_rng(seed)

    distances = _pairwise_sq_distances(points)
    conditional = _conditional_probabilities(distances, perplexity)
    joint = (conditional + conditional.T) / (2.0 * n)
    np.maximum(joint, 1e-12, out=joint)

    embedding = rng.standard_normal((n, n_components)) * 1e-4
    update = np.zeros_like(embedding)
    gains = np.ones_like(embedding)
    exaggeration_until = n_iter // 4

    for iteration in range(n_iter):
        p = joint * 4.0 if iteration < exaggeration_until else joint
        d = _pairwise_sq_distances(embedding)
        student = 1.0 / (1.0 + d)
        np.fill_diagonal(student, 0.0)
        q = student / max(student.sum(), 1e-12)
        np.maximum(q, 1e-12, out=q)

        coefficient = (p - q) * student
        gradient = 4.0 * (
            np.diag(coefficient.sum(axis=1)) - coefficient
        ) @ embedding

        momentum = 0.5 if iteration < exaggeration_until else 0.8
        same_sign = np.sign(gradient) == np.sign(update)
        gains = np.where(same_sign, gains * 0.8, gains + 0.2)
        np.maximum(gains, 0.01, out=gains)
        update = momentum * update - learning_rate * gains * gradient
        embedding = embedding + update
        embedding -= embedding.mean(axis=0)
    return embedding
