"""Evaluation: metrics, t-SNE projection, and the experiment harness."""

from .experiments import (
    METHOD_NAMES,
    DiscoveryRun,
    LinkPredictionRun,
    deepdirect_factory,
    deepdirect_grid_factory,
    default_methods,
    format_table,
    run_discovery,
    run_discovery_on_task,
    run_link_prediction,
)
from .metrics import (
    accuracy,
    nearest_neighbor_separability,
    roc_auc,
    roc_curve,
)
from .tsne import tsne

__all__ = [
    "METHOD_NAMES",
    "DiscoveryRun",
    "LinkPredictionRun",
    "accuracy",
    "deepdirect_factory",
    "deepdirect_grid_factory",
    "default_methods",
    "format_table",
    "nearest_neighbor_separability",
    "roc_auc",
    "roc_curve",
    "run_discovery",
    "run_discovery_on_task",
    "run_link_prediction",
    "tsne",
]
