"""Evaluation metrics used across the paper's experiments."""

from __future__ import annotations

import numpy as np
from scipy import stats


def accuracy(truth: np.ndarray, predictions: np.ndarray) -> float:
    """Fraction of exact matches."""
    truth = np.asarray(truth)
    predictions = np.asarray(predictions)
    if truth.shape != predictions.shape:
        raise ValueError("truth and predictions must have the same shape")
    if truth.size == 0:
        raise ValueError("cannot compute accuracy of an empty set")
    return float(np.mean(truth == predictions))


def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank (Mann-Whitney) formulation.

    Handles tied scores by mid-ranking, which is equivalent to the
    trapezoidal ROC area.
    """
    labels = np.asarray(labels, dtype=float)
    scores = np.asarray(scores, dtype=float)
    if labels.shape != scores.shape or labels.ndim != 1:
        raise ValueError("labels and scores must be equal-length vectors")
    n_pos = int(labels.sum())
    n_neg = len(labels) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc needs both classes present")
    ranks = stats.rankdata(scores)
    pos_rank_sum = float(ranks[labels > 0.5].sum())
    return (pos_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


def roc_curve(
    labels: np.ndarray, scores: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve points ``(fpr, tpr, thresholds)`` sorted by threshold desc."""
    labels = np.asarray(labels, dtype=float)
    scores = np.asarray(scores, dtype=float)
    order = np.argsort(-scores, kind="stable")
    labels = labels[order]
    scores = scores[order]
    distinct = np.flatnonzero(np.diff(scores)) if len(scores) > 1 else np.array([], int)
    cut = np.concatenate([distinct, [len(scores) - 1]])
    tps = np.cumsum(labels)[cut]
    fps = (cut + 1) - tps
    n_pos = labels.sum()
    n_neg = len(labels) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_curve needs both classes present")
    return fps / n_neg, tps / n_pos, scores[cut]


def nearest_neighbor_separability(
    points: np.ndarray, labels: np.ndarray
) -> float:
    """1-NN label agreement — a quantitative 'is Fig. 7 separable' score.

    For every point, check whether its nearest neighbour (Euclidean,
    excluding itself) carries the same label; 1.0 means perfectly
    separable clusters, ~0.5 means the two classes are fully mixed.
    """
    points = np.asarray(points, dtype=float)
    labels = np.asarray(labels)
    n = len(points)
    if n < 2:
        raise ValueError("need at least two points")
    sq_norms = (points**2).sum(axis=1)
    distances = sq_norms[:, None] + sq_norms[None, :] - 2.0 * points @ points.T
    np.fill_diagonal(distances, np.inf)
    nearest = distances.argmin(axis=1)
    return float(np.mean(labels[nearest] == labels))
