"""Experiment harness shared by the benchmarks and examples.

Wraps the five methods of the paper's evaluation behind factory
functions with a shared "speed profile" (embedding dimensions / epochs),
and provides runners for the two tasks:

* :func:`run_discovery` — one point of the Fig. 3-6 direction-discovery
  grids: hide directions, fit each method, report accuracy.
* :func:`run_link_prediction` — one dataset of Fig. 8: split ties, fit
  each method on G', compare directionality adjacency matrices against
  the raw adjacency matrix via Jaccard link prediction AUC.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping

from ..apps import (
    directionality_adjacency_matrix,
    discovery_accuracy,
    link_prediction_auc,
    two_hop_candidate_pairs,
)
from ..datasets import HiddenDirectionTask, held_out_tie_split, hide_directions
from ..embedding import DeepDirectConfig, LineConfig
from ..graph import MixedSocialNetwork
from ..models import (
    DeepDirectGridSearch,
    DeepDirectModel,
    HFModel,
    LineModel,
    ReDirectNSM,
    ReDirectTSM,
    TieDirectionModel,
)
from ..obs import span

MethodFactory = Callable[[], TieDirectionModel]

#: Canonical method names, in the paper's plotting order.
METHOD_NAMES = ("LINE", "HF", "ReDirect-N/sm", "ReDirect-T/sm", "DeepDirect")


def deepdirect_factory(
    dimensions: int = 64,
    epochs: float = 10.0,
    alpha: float = 5.0,
    beta: float = 0.1,
    n_negative: int = 5,
    pairs_per_tie: float | None = 150.0,
    max_pairs: int | None = 6_000_000,
    callbacks: list | None = None,
    **kwargs,
) -> MethodFactory:
    """Factory for DeepDirect with a given hyper-parameter profile.

    ``callbacks`` (``repro.obs`` sinks) are attached to every model the
    factory builds, so a whole experiment grid streams into one sink.
    """

    def build() -> DeepDirectModel:
        return DeepDirectModel(
            DeepDirectConfig(
                dimensions=dimensions,
                epochs=epochs,
                alpha=alpha,
                beta=beta,
                n_negative=n_negative,
                pairs_per_tie=pairs_per_tie,
                max_pairs=max_pairs,
                **kwargs,
            ),
            callbacks=callbacks,
        )

    return build


def deepdirect_grid_factory(
    dimensions: int = 64,
    epochs: float = 10.0,
    selection_epochs: float | None = 4.0,
    grid: tuple[tuple[float, float], ...] = ((5.0, 0.1), (5.0, 1.0)),
    pairs_per_tie: float | None = 150.0,
    max_pairs: int | None = 6_000_000,
) -> MethodFactory:
    """Factory for grid-searched DeepDirect (the paper's protocol)."""

    def build() -> DeepDirectGridSearch:
        return DeepDirectGridSearch(
            DeepDirectConfig(
                dimensions=dimensions,
                epochs=epochs,
                pairs_per_tie=pairs_per_tie,
                max_pairs=max_pairs,
            ),
            grid=grid,
            selection_epochs=selection_epochs,
        )

    return build


def default_methods(
    dimensions: int = 64,
    epochs: float = 10.0,
    pairs_per_tie: float | None = 150.0,
    max_pairs: int | None = 6_000_000,
    centrality_pivots: int = 48,
    callbacks: list | None = None,
) -> dict[str, MethodFactory]:
    """The five methods of Sec. 6.1 with a common speed profile.

    ``dimensions`` is DeepDirect's tie-embedding size; LINE's node size
    is half of it so its concatenated tie feature matches (the paper's
    128-vs-64 convention).  ``pairs_per_tie`` normalises the SGD budget
    across graphs of different density.  ``callbacks`` (``repro.obs``
    sinks) reach the embedding trainers (LINE, DeepDirect).
    """
    # LINE counts epochs over edges the way DeepDirect counts pairs per
    # tie, so give it the same per-tie sample budget.
    line_epochs = pairs_per_tie if pairs_per_tie is not None else epochs

    def line_factory() -> LineModel:
        return LineModel(
            LineConfig(
                dimensions=max(2, dimensions // 2),
                epochs=line_epochs,
                max_samples=max_pairs,
            ),
            callbacks=callbacks,
        )

    return {
        "LINE": line_factory,
        "HF": lambda: HFModel(centrality_pivots=centrality_pivots),
        "ReDirect-N/sm": lambda: ReDirectNSM(dimensions=40),
        "ReDirect-T/sm": lambda: ReDirectTSM(),
        "DeepDirect": deepdirect_factory(
            dimensions=dimensions,
            epochs=epochs,
            pairs_per_tie=pairs_per_tie,
            max_pairs=max_pairs,
            callbacks=callbacks,
        ),
    }


@dataclass(frozen=True)
class DiscoveryRun:
    """One (method, workload) cell of a direction-discovery experiment."""

    method: str
    directed_fraction: float
    accuracy: float
    fit_seconds: float


def run_discovery(
    network: MixedSocialNetwork,
    directed_fraction: float,
    methods: Mapping[str, MethodFactory],
    seed: int = 0,
) -> list[DiscoveryRun]:
    """Hide directions, fit every method, and score discovery accuracy."""
    with span("eval.hide_directions", directed_fraction=directed_fraction):
        task = hide_directions(network, directed_fraction, seed=seed)
    return run_discovery_on_task(task, methods, seed=seed)


def run_discovery_on_task(
    task: HiddenDirectionTask,
    methods: Mapping[str, MethodFactory],
    seed: int = 0,
) -> list[DiscoveryRun]:
    """Fit every method on an existing hidden-direction task."""
    results = []
    for name, factory in methods.items():
        with span("eval.method", method=name) as method_sp:
            start = time.perf_counter()
            with span("eval.fit", method=name):
                model = factory().fit(task.network, seed=seed)
            elapsed = time.perf_counter() - start
            with span("eval.score", method=name):
                accuracy = discovery_accuracy(model, task)
            method_sp.set(accuracy=accuracy, fit_seconds=elapsed)
        results.append(
            DiscoveryRun(
                method=name,
                directed_fraction=task.directed_fraction,
                accuracy=accuracy,
                fit_seconds=elapsed,
            )
        )
    return results


@dataclass(frozen=True)
class LinkPredictionRun:
    """One (method, dataset) cell of the Fig. 8 experiment."""

    method: str
    auc: float
    n_candidates: int


def run_link_prediction(
    network: MixedSocialNetwork,
    methods: Mapping[str, MethodFactory],
    keep_fraction: float = 0.8,
    max_pairs: int | None = 200_000,
    seed: int = 0,
) -> list[LinkPredictionRun]:
    """Fig. 8 for one dataset: raw adjacency vs each method's matrix.

    The returned list leads with the ``"Adjacency"`` control row (plain
    0/1 matrix), followed by one row per method.
    """
    split = held_out_tie_split(network, keep_fraction, seed=seed)
    train = split.train_network
    candidates = two_hop_candidate_pairs(train, max_pairs=max_pairs, seed=seed)

    results = [
        LinkPredictionRun(
            method="Adjacency",
            auc=link_prediction_auc(
                train.adjacency_matrix(), candidates, network
            ).auc,
            n_candidates=len(candidates),
        )
    ]
    for name, factory in methods.items():
        model = factory().fit(train, seed=seed)
        matrix = directionality_adjacency_matrix(model)
        outcome = link_prediction_auc(matrix, candidates, network)
        results.append(
            LinkPredictionRun(
                method=name, auc=outcome.auc, n_candidates=outcome.n_candidates
            )
        )
    return results


def format_table(
    rows: list[dict[str, object]], columns: list[str]
) -> str:
    """Plain-text table used by the bench harnesses to print paper rows."""
    widths = {
        c: max(len(c), *(len(str(r.get(c, ""))) for r in rows)) for c in columns
    }
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)
