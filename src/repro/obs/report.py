"""Rendering for ``repro report``: phase breakdowns and run diffs.

:func:`load_run` normalises any of the run artefacts this repo emits
into one shape — ``{"label", "phases", "metrics"}`` with ``phases`` as
``{name: {"total_s", "self_s", "count"}}`` — accepting

* a run manifest (``repro_manifest/v1``, the ``--manifest`` output),
* a Chrome trace or compact JSONL trace (the ``--trace`` output),
* a perf-harness report (``bench_estep/v1`` with its ``phases`` key,
  e.g. the committed ``BENCH_estep.json``).

:func:`render_report` prints the phase/loss-term breakdown of one run;
:func:`render_diff` compares two runs phase by phase and flags
regressions beyond a relative threshold.

Runs that carry serving-load measurements — a ``bench_estep/v1`` report
with a ``serving.load`` block, or a standalone ``serve_load/v1`` report
from ``python -m benchmarks.serve_load`` — additionally get an ``slo``
section: multi-client p50/p95/p99 latency, RPS and error rate.
``render_diff`` compares the SLO between baseline and candidate and
flags ``slo.p99_ms`` (tail latency) and ``slo.rps`` (throughput)
regressions alongside the phase flags, so ``repro report --diff
BENCH_estep.json fresh.json --strict`` fails CI on a p99 regression.

Artefacts that record host provenance (bench reports' ``host`` block,
manifests' ``platform.cpu_count``) surface it as ``host_cores``;
``render_diff`` appends a non-strict WARNING when the two runs came
from hosts with different core counts, since speedups measured on a
4-core runner are not comparable to ones from a 64-core workstation.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Mapping

from .manifest import MANIFEST_SCHEMA
from .trace import TRACE_SCHEMA, phase_totals, read_trace

#: Span-name prefixes that are per-loss-term measurements (Eq. 18).
LOSS_TERM_SPANS = ("estep.L_topo", "estep.L_label", "estep.L_pattern")

#: Schema of ``python -m benchmarks.serve_load`` reports.
SERVE_LOAD_SCHEMA = "serve_load/v1"


def _host_cores(data: Mapping[str, Any]) -> int | None:
    """CPU cores of the host a run artefact was produced on, if recorded.

    Bench reports carry a ``host`` provenance block (preferring the
    scheduler-affinity ``usable_cores`` over raw ``cpu_count``) with a
    legacy top-level ``cpu_count`` fallback; manifests record
    ``platform.cpu_count``.  Returns ``None`` for artefacts without host
    provenance (traces, old reports).
    """
    host = data.get("host")
    if isinstance(host, Mapping):
        for key in ("usable_cores", "cpu_count"):
            if host.get(key):
                return int(host[key])
    if data.get("cpu_count"):
        return int(data["cpu_count"])
    platform_info = data.get("platform")
    if isinstance(platform_info, Mapping) and platform_info.get("cpu_count"):
        return int(platform_info["cpu_count"])
    return None


def _extract_slo(data: Mapping[str, Any]) -> dict[str, Any] | None:
    """Pull the serving-SLO block out of a load-bearing report.

    Accepts either a ``serve_load/v1`` report (fields at the top level)
    or a ``bench_estep/v1`` report (fields under ``serving.load``).
    Returns ``None`` when the report has no completed load run.
    """
    if data.get("schema") == SERVE_LOAD_SCHEMA:
        load: Mapping[str, Any] = data
    else:
        load = (data.get("serving") or {}).get("load") or {}
    if load.get("p99_ms") is None:
        return None
    slo = {
        key: load[key]
        for key in (
            "clients",
            "duration_s",
            "distribution",
            "requests",
            "errors",
            "error_rate",
            "rps",
            "pairs_per_sec",
            "p50_ms",
            "p95_ms",
            "p99_ms",
        )
        if key in load
    }
    if isinstance(load.get("slowest"), Mapping):
        slo["slowest"] = dict(load["slowest"])
    return slo


def _normalise_phases(
    phases: Mapping[str, Any],
) -> dict[str, dict[str, float]]:
    """Accept both rich (dict) and bare (seconds) phase values."""
    out: dict[str, dict[str, float]] = {}
    for name, value in phases.items():
        if isinstance(value, Mapping):
            out[name] = {
                "total_s": float(value.get("total_s", 0.0)),
                "self_s": float(value.get("self_s", value.get("total_s", 0.0))),
                "count": int(value.get("count", 1)),
            }
        else:
            out[name] = {
                "total_s": float(value), "self_s": float(value), "count": 1
            }
    return out


def load_run(path: str | pathlib.Path) -> dict[str, Any]:
    """Load any supported run artefact into the canonical run shape."""
    path = pathlib.Path(path)
    text_head = ""
    try:
        with open(path, encoding="utf-8") as handle:
            text_head = handle.read(1)
    except OSError as exc:
        raise ValueError(f"cannot read run file {path}: {exc}") from exc

    if text_head == "{" and not str(path).endswith(".jsonl"):
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        schema = data.get("schema") or data.get("otherData", {}).get("schema")
        if schema == MANIFEST_SCHEMA:
            return {
                "label": str(path),
                "kind": "manifest",
                "phases": _normalise_phases(data.get("phases", {})),
                "metrics": dict(data.get("metrics", {})),
                "manifest": data,
                "host_cores": _host_cores(data),
                "health": data.get("health"),
            }
        if "traceEvents" in data:
            return {
                "label": str(path),
                "kind": "trace",
                "phases": phase_totals(read_trace(path)),
                "metrics": {},
            }
        if schema == SERVE_LOAD_SCHEMA:
            return {
                "label": str(path),
                "kind": "serve_load",
                "phases": {},
                "metrics": {},
                "slo": _extract_slo(data),
            }
        if "phases" in data:  # bench_estep/v1 and friends
            run = {
                "label": str(path),
                "kind": str(schema or "report"),
                "phases": _normalise_phases(data["phases"]),
                "metrics": {},
                "host_cores": _host_cores(data),
            }
            slo = _extract_slo(data)
            if slo is not None:
                run["slo"] = slo
            return run
        raise ValueError(
            f"{path}: unrecognised run file (schema={schema!r}; expected a "
            f"manifest, a trace, or a report with a 'phases' key)"
        )
    # JSONL trace (header line carries the schema, but tolerate raw lines).
    records = read_trace(path)
    if not records:
        raise ValueError(f"{path}: no span records found ({TRACE_SCHEMA})")
    return {
        "label": str(path),
        "kind": "trace",
        "phases": phase_totals(records),
        "metrics": {},
    }


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1e3:7.2f}ms"


def _render_slo(slo: Mapping[str, Any]) -> list[str]:
    """The serving-SLO block shared by report and diff rendering."""
    setup = (
        f"{slo.get('clients', '?')} closed-loop clients x "
        f"{slo.get('duration_s', 0):g}s, "
        f"{slo.get('distribution', '?')} distribution"
    )
    lines = [f"serving SLO ({setup}):"]
    lines.append(
        f"  p50 {slo['p50_ms']:.1f} ms | p95 {slo['p95_ms']:.1f} ms | "
        f"p99 {slo['p99_ms']:.1f} ms"
    )
    lines.append(
        f"  {slo.get('rps', 0):,.0f} req/s, {slo.get('requests', 0)} "
        f"requests, {slo.get('errors', 0)} errors "
        f"({slo.get('error_rate', 0):.2%})"
    )
    slowest = slo.get("slowest")
    if slowest and slowest.get("request_id"):
        lines.append(
            f"  slowest request {slowest['request_id']} at "
            f"{slowest['latency_ms']:.1f} ms (grep the access log / "
            "trace for this id)"
        )
    return lines


def render_report(run: Mapping[str, Any]) -> str:
    """Human-readable phase / loss-term / metric breakdown of one run."""
    phases = run["phases"]
    lines = [f"run: {run['label']}", ""]
    slo = run.get("slo")
    if not phases:
        if slo:
            lines.extend(_render_slo(slo))
        else:
            lines.append("(no phase timings recorded)")
        return "\n".join(lines)
    total = sum(entry["self_s"] for entry in phases.values())
    width = max(len(name) for name in phases)
    lines.append(
        f"{'phase':<{width}}  {'total':>9}  {'self':>9}  {'count':>6}  share"
    )
    ordered = sorted(
        phases.items(), key=lambda item: item[1]["total_s"], reverse=True
    )
    for name, entry in ordered:
        share = entry["self_s"] / total if total > 0 else 0.0
        lines.append(
            f"{name:<{width}}  {_fmt_seconds(entry['total_s'])}  "
            f"{_fmt_seconds(entry['self_s'])}  {entry['count']:>6d}  "
            f"{share:6.1%}"
        )
    loss_terms = [
        (name, phases[name]) for name in LOSS_TERM_SPANS if name in phases
    ]
    if loss_terms:
        term_total = sum(entry["total_s"] for _, entry in loss_terms)
        lines.append("")
        lines.append("loss-term breakdown (Eq. 18):")
        for name, entry in loss_terms:
            share = entry["total_s"] / term_total if term_total > 0 else 0.0
            lines.append(
                f"  {name.split('.', 1)[1]:<10} "
                f"{_fmt_seconds(entry['total_s'])}  {share:6.1%}"
            )
    metrics = run.get("metrics") or {}
    if metrics:
        lines.append("")
        lines.append("metrics:")
        for key in sorted(metrics):
            value = metrics[key]
            shown = f"{value:.6g}" if isinstance(value, float) else value
            lines.append(f"  {key} = {shown}")
    health = run.get("health")
    if health:
        lines.append("")
        lines.extend(_render_health(health))
    if slo:
        lines.append("")
        lines.extend(_render_slo(slo))
    return "\n".join(lines)


def _render_health(health: Mapping[str, Any]) -> list[str]:
    """The training-health block of a monitored run's manifest."""
    status = "DIVERGED" if health.get("diverged") else (
        "degraded" if health.get("warnings") else "clean"
    )
    lines = [
        f"training health ({status}, policy={health.get('policy', '?')}):",
        f"  checks {health.get('checks', 0)} | warnings "
        f"{health.get('warnings', 0)} | rollbacks "
        f"{health.get('rollbacks', 0)}",
    ]
    first_bad = health.get("first_bad")
    if first_bad:
        lines.append(
            f"  first bad value: {first_bad.get('term')} = "
            f"{first_bad.get('value')} at batch {first_bad.get('batch')}"
        )
    terms = health.get("terms") or {}
    if terms:
        shown = " ".join(
            f"{name}={value:.4g}" for name, value in sorted(terms.items())
        )
        lines.append(f"  final loss EMAs: {shown}")
    return lines


def diff_slo(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    threshold: float = 0.25,
) -> list[dict[str, Any]]:
    """SLO comparison rows of run ``b`` against baseline ``a``.

    Tail latency (``p50_ms``/``p95_ms``/``p99_ms``) regresses when it
    *grows* beyond the threshold; throughput (``rps``) regresses when it
    *shrinks* beyond it.  Only ``p99_ms`` and ``rps`` carry the
    ``regression`` flag — p50/p95 rows are informational, the SLO gate
    is on the tail and on throughput.  Returns ``[]`` unless both runs
    carry an SLO block.
    """
    slo_a, slo_b = a.get("slo"), b.get("slo")
    if not slo_a or not slo_b:
        return []
    rows = []
    for key, higher_is_worse, gated in (
        ("p50_ms", True, False),
        ("p95_ms", True, False),
        ("p99_ms", True, True),
        ("rps", False, True),
    ):
        if key not in slo_a or key not in slo_b:
            continue
        val_a, val_b = float(slo_a[key]), float(slo_b[key])
        ratio = val_b / val_a if val_a > 0 else None
        regression = False
        if gated and ratio is not None:
            worse = ratio > 1.0 + threshold if higher_is_worse else (
                ratio < 1.0 - threshold
            )
            regression = worse
        rows.append(
            {
                "metric": f"slo.{key}",
                "a": val_a,
                "b": val_b,
                "ratio": ratio,
                "regression": regression,
            }
        )
    return rows


def diff_phases(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    threshold: float = 0.25,
) -> list[dict[str, Any]]:
    """Phase-by-phase comparison rows of run ``b`` against baseline ``a``.

    Each row carries ``ratio = b/a`` on total seconds and a
    ``regression`` flag set when ``b`` is more than ``threshold``
    (relative) slower.  Phases present in only one run get a ``None``
    ratio and are never flagged (there is nothing to compare).
    """
    phases_a, phases_b = a["phases"], b["phases"]
    rows = []
    for name in sorted(set(phases_a) | set(phases_b)):
        in_a, in_b = name in phases_a, name in phases_b
        sec_a = phases_a[name]["total_s"] if in_a else None
        sec_b = phases_b[name]["total_s"] if in_b else None
        ratio = None
        regression = False
        if in_a and in_b and sec_a > 0:
            ratio = sec_b / sec_a
            regression = ratio > 1.0 + threshold
        rows.append(
            {
                "phase": name,
                "a_s": sec_a,
                "b_s": sec_b,
                "ratio": ratio,
                "regression": regression,
            }
        )
    return rows


def _host_mismatch_warning(
    a: Mapping[str, Any], b: Mapping[str, Any]
) -> list[str]:
    """A warning block when the two runs came from differently-sized hosts.

    Core count changes the meaning of every multi-worker speedup and
    most wall-clock numbers, so the diff says so out loud — but it is a
    warning only, never a ``--strict`` failure: cross-host comparisons
    are legitimate as long as the reader knows they are cross-host.
    """
    cores_a, cores_b = a.get("host_cores"), b.get("host_cores")
    if not cores_a or not cores_b or cores_a == cores_b:
        return []
    return [
        "",
        f"WARNING: host core counts differ (A: {cores_a} cores, "
        f"B: {cores_b} cores) — wall-clock and speedup comparisons "
        "are not apples-to-apples.",
    ]


def render_diff(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    threshold: float = 0.25,
) -> tuple[str, list[str]]:
    """Render the diff table; returns ``(text, flagged phase names)``."""
    rows = diff_phases(a, b, threshold)
    slo_rows = diff_slo(a, b, threshold)
    lines = [
        f"baseline A: {a['label']}",
        f"candidate B: {b['label']}",
        "",
    ]
    if not rows and not slo_rows:
        lines.append("(no phases in either run)")
        lines.extend(_host_mismatch_warning(a, b))
        return "\n".join(lines), []
    if not rows:
        flagged = _append_slo_diff(lines, slo_rows, threshold)
        if flagged:
            lines.append("")
            lines.append(
                f"{len(flagged)} SLO metric(s) regressed beyond "
                f"{threshold:.0%}: " + ", ".join(flagged)
            )
        lines.extend(_host_mismatch_warning(a, b))
        return "\n".join(lines), flagged
    width = max(len(row["phase"]) for row in rows)
    lines.append(
        f"{'phase':<{width}}  {'A':>9}  {'B':>9}  {'B/A':>6}  flag"
    )
    flagged = []
    for row in rows:
        a_s = _fmt_seconds(row["a_s"]) if row["a_s"] is not None else "      --"
        b_s = _fmt_seconds(row["b_s"]) if row["b_s"] is not None else "      --"
        if row["ratio"] is None:
            ratio = "    --"
            flag = "only-A" if row["b_s"] is None else "only-B"
        else:
            ratio = f"{row['ratio']:5.2f}x"
            flag = f"REGRESSION (> {threshold:.0%})" if row["regression"] else ""
            if row["regression"]:
                flagged.append(row["phase"])
        lines.append(f"{row['phase']:<{width}}  {a_s}  {b_s}  {ratio}  {flag}")
    metrics_a = a.get("metrics") or {}
    metrics_b = b.get("metrics") or {}
    common = sorted(set(metrics_a) & set(metrics_b))
    if common:
        lines.append("")
        lines.append("metrics (A -> B):")
        for key in common:
            lines.append(f"  {key}: {metrics_a[key]} -> {metrics_b[key]}")
    if slo_rows:
        lines.append("")
        flagged.extend(_append_slo_diff(lines, slo_rows, threshold))
    if flagged:
        lines.append("")
        lines.append(
            f"{len(flagged)} phase(s)/SLO metric(s) regressed beyond "
            f"{threshold:.0%}: " + ", ".join(flagged)
        )
    lines.extend(_host_mismatch_warning(a, b))
    return "\n".join(lines), flagged


def _append_slo_diff(
    lines: list[str],
    slo_rows: list[dict[str, Any]],
    threshold: float,
) -> list[str]:
    """Append the SLO comparison table; return flagged metric names."""
    flagged = []
    width = max(len(row["metric"]) for row in slo_rows)
    lines.append("serving SLO (A -> B):")
    for row in slo_rows:
        ratio = f"{row['ratio']:5.2f}x" if row["ratio"] is not None else "   --"
        flag = ""
        if row["regression"]:
            flag = f"REGRESSION (> {threshold:.0%})"
            flagged.append(row["metric"])
        unit = "req/s" if row["metric"].endswith("rps") else "ms"
        lines.append(
            f"  {row['metric']:<{width}}  {row['a']:9.1f} {unit} -> "
            f"{row['b']:9.1f} {unit}  {ratio}  {flag}"
        )
    return flagged
