"""Rendering for ``repro report``: phase breakdowns and run diffs.

:func:`load_run` normalises any of the run artefacts this repo emits
into one shape — ``{"label", "phases", "metrics"}`` with ``phases`` as
``{name: {"total_s", "self_s", "count"}}`` — accepting

* a run manifest (``repro_manifest/v1``, the ``--manifest`` output),
* a Chrome trace or compact JSONL trace (the ``--trace`` output),
* a perf-harness report (``bench_estep/v1`` with its ``phases`` key,
  e.g. the committed ``BENCH_estep.json``).

:func:`render_report` prints the phase/loss-term breakdown of one run;
:func:`render_diff` compares two runs phase by phase and flags
regressions beyond a relative threshold.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Mapping

from .manifest import MANIFEST_SCHEMA
from .trace import TRACE_SCHEMA, phase_totals, read_trace

#: Span-name prefixes that are per-loss-term measurements (Eq. 18).
LOSS_TERM_SPANS = ("estep.L_topo", "estep.L_label", "estep.L_pattern")


def _normalise_phases(
    phases: Mapping[str, Any],
) -> dict[str, dict[str, float]]:
    """Accept both rich (dict) and bare (seconds) phase values."""
    out: dict[str, dict[str, float]] = {}
    for name, value in phases.items():
        if isinstance(value, Mapping):
            out[name] = {
                "total_s": float(value.get("total_s", 0.0)),
                "self_s": float(value.get("self_s", value.get("total_s", 0.0))),
                "count": int(value.get("count", 1)),
            }
        else:
            out[name] = {
                "total_s": float(value), "self_s": float(value), "count": 1
            }
    return out


def load_run(path: str | pathlib.Path) -> dict[str, Any]:
    """Load any supported run artefact into the canonical run shape."""
    path = pathlib.Path(path)
    text_head = ""
    try:
        with open(path, encoding="utf-8") as handle:
            text_head = handle.read(1)
    except OSError as exc:
        raise ValueError(f"cannot read run file {path}: {exc}") from exc

    if text_head == "{" and not str(path).endswith(".jsonl"):
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        schema = data.get("schema") or data.get("otherData", {}).get("schema")
        if schema == MANIFEST_SCHEMA:
            return {
                "label": str(path),
                "kind": "manifest",
                "phases": _normalise_phases(data.get("phases", {})),
                "metrics": dict(data.get("metrics", {})),
                "manifest": data,
            }
        if "traceEvents" in data:
            return {
                "label": str(path),
                "kind": "trace",
                "phases": phase_totals(read_trace(path)),
                "metrics": {},
            }
        if "phases" in data:  # bench_estep/v1 and friends
            return {
                "label": str(path),
                "kind": str(schema or "report"),
                "phases": _normalise_phases(data["phases"]),
                "metrics": {},
            }
        raise ValueError(
            f"{path}: unrecognised run file (schema={schema!r}; expected a "
            f"manifest, a trace, or a report with a 'phases' key)"
        )
    # JSONL trace (header line carries the schema, but tolerate raw lines).
    records = read_trace(path)
    if not records:
        raise ValueError(f"{path}: no span records found ({TRACE_SCHEMA})")
    return {
        "label": str(path),
        "kind": "trace",
        "phases": phase_totals(records),
        "metrics": {},
    }


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1e3:7.2f}ms"


def render_report(run: Mapping[str, Any]) -> str:
    """Human-readable phase / loss-term / metric breakdown of one run."""
    phases = run["phases"]
    lines = [f"run: {run['label']}", ""]
    if not phases:
        lines.append("(no phase timings recorded)")
        return "\n".join(lines)
    total = sum(entry["self_s"] for entry in phases.values())
    width = max(len(name) for name in phases)
    lines.append(
        f"{'phase':<{width}}  {'total':>9}  {'self':>9}  {'count':>6}  share"
    )
    ordered = sorted(
        phases.items(), key=lambda item: item[1]["total_s"], reverse=True
    )
    for name, entry in ordered:
        share = entry["self_s"] / total if total > 0 else 0.0
        lines.append(
            f"{name:<{width}}  {_fmt_seconds(entry['total_s'])}  "
            f"{_fmt_seconds(entry['self_s'])}  {entry['count']:>6d}  "
            f"{share:6.1%}"
        )
    loss_terms = [
        (name, phases[name]) for name in LOSS_TERM_SPANS if name in phases
    ]
    if loss_terms:
        term_total = sum(entry["total_s"] for _, entry in loss_terms)
        lines.append("")
        lines.append("loss-term breakdown (Eq. 18):")
        for name, entry in loss_terms:
            share = entry["total_s"] / term_total if term_total > 0 else 0.0
            lines.append(
                f"  {name.split('.', 1)[1]:<10} "
                f"{_fmt_seconds(entry['total_s'])}  {share:6.1%}"
            )
    metrics = run.get("metrics") or {}
    if metrics:
        lines.append("")
        lines.append("metrics:")
        for key in sorted(metrics):
            value = metrics[key]
            shown = f"{value:.6g}" if isinstance(value, float) else value
            lines.append(f"  {key} = {shown}")
    return "\n".join(lines)


def diff_phases(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    threshold: float = 0.25,
) -> list[dict[str, Any]]:
    """Phase-by-phase comparison rows of run ``b`` against baseline ``a``.

    Each row carries ``ratio = b/a`` on total seconds and a
    ``regression`` flag set when ``b`` is more than ``threshold``
    (relative) slower.  Phases present in only one run get a ``None``
    ratio and are never flagged (there is nothing to compare).
    """
    phases_a, phases_b = a["phases"], b["phases"]
    rows = []
    for name in sorted(set(phases_a) | set(phases_b)):
        in_a, in_b = name in phases_a, name in phases_b
        sec_a = phases_a[name]["total_s"] if in_a else None
        sec_b = phases_b[name]["total_s"] if in_b else None
        ratio = None
        regression = False
        if in_a and in_b and sec_a > 0:
            ratio = sec_b / sec_a
            regression = ratio > 1.0 + threshold
        rows.append(
            {
                "phase": name,
                "a_s": sec_a,
                "b_s": sec_b,
                "ratio": ratio,
                "regression": regression,
            }
        )
    return rows


def render_diff(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    threshold: float = 0.25,
) -> tuple[str, list[str]]:
    """Render the diff table; returns ``(text, flagged phase names)``."""
    rows = diff_phases(a, b, threshold)
    lines = [
        f"baseline A: {a['label']}",
        f"candidate B: {b['label']}",
        "",
    ]
    if not rows:
        lines.append("(no phases in either run)")
        return "\n".join(lines), []
    width = max(len(row["phase"]) for row in rows)
    lines.append(
        f"{'phase':<{width}}  {'A':>9}  {'B':>9}  {'B/A':>6}  flag"
    )
    flagged = []
    for row in rows:
        a_s = _fmt_seconds(row["a_s"]) if row["a_s"] is not None else "      --"
        b_s = _fmt_seconds(row["b_s"]) if row["b_s"] is not None else "      --"
        if row["ratio"] is None:
            ratio = "    --"
            flag = "only-A" if row["b_s"] is None else "only-B"
        else:
            ratio = f"{row['ratio']:5.2f}x"
            flag = f"REGRESSION (> {threshold:.0%})" if row["regression"] else ""
            if row["regression"]:
                flagged.append(row["phase"])
        lines.append(f"{row['phase']:<{width}}  {a_s}  {b_s}  {ratio}  {flag}")
    metrics_a = a.get("metrics") or {}
    metrics_b = b.get("metrics") or {}
    common = sorted(set(metrics_a) & set(metrics_b))
    if common:
        lines.append("")
        lines.append("metrics (A -> B):")
        for key in common:
            lines.append(f"  {key}: {metrics_a[key]} -> {metrics_b[key]}")
    if flagged:
        lines.append("")
        lines.append(
            f"{len(flagged)} phase(s) regressed beyond {threshold:.0%}: "
            + ", ".join(flagged)
        )
    return "\n".join(lines), flagged
