"""Live run monitor: tail a training run's JSONL telemetry.

``repro monitor RUN_DIR`` attaches to the telemetry stream an in-flight
``repro discover --telemetry`` run is writing and renders a refreshing
status line to stderr: progress/ETA, pairs/sec, the per-term loss trend,
resident memory, and HOGWILD worker lag.  ``--once --json`` prints one
machine-readable snapshot (``repro_monitor/v1``) to stdout instead, for
scripts and CI.

The monitor is a pure *reader*: it never touches the training process,
only re-parses the JSONL file (including rotated segments, see
:class:`repro.obs.sinks.JsonlSink`) on every refresh.  Because the sink
flushes whole lines after every event, a concurrent reader always sees
a valid prefix of the stream — mid-write torn lines cannot happen.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time
from typing import Any, IO, Mapping, Sequence

from .sinks import read_jsonl_series

#: Schema tag of the ``--json`` snapshot output.
MONITOR_SCHEMA = "repro_monitor/v1"

#: Loss-term keys surfaced from batch/health events, in display order.
LOSS_TERMS = ("L", "L_topo", "L_label", "L_pattern")

#: How far back (in batch events) the loss trend looks.
TREND_WINDOW = 10


def resolve_telemetry(target: str | pathlib.Path) -> pathlib.Path:
    """The telemetry JSONL behind ``target`` (a file or a run directory).

    A directory is searched for ``telemetry.jsonl`` first, then any
    other live ``*.jsonl`` file (rotated ``.N`` segments are segments,
    not candidates), newest first.  Raises ``FileNotFoundError`` when
    nothing is found — a monitor silently watching the wrong file would
    be worse than an error.
    """
    path = pathlib.Path(target)
    if path.is_file():
        return path
    if path.is_dir():
        preferred = path / "telemetry.jsonl"
        if preferred.exists():
            return preferred
        candidates = sorted(
            path.glob("*.jsonl"),
            key=lambda p: p.stat().st_mtime,
            reverse=True,
        )
        if candidates:
            return candidates[0]
        raise FileNotFoundError(f"no *.jsonl telemetry found in {target}")
    raise FileNotFoundError(f"{target} does not exist")


class RunMonitor:
    """Builds ``repro_monitor/v1`` snapshots from a telemetry stream."""

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)

    def snapshot(self) -> dict[str, Any]:
        """One point-in-time view of the run (re-reads the stream)."""
        try:
            events = read_jsonl_series(self.path)
        except OSError:
            events = []
        return summarize_events(events, source=str(self.path))


def summarize_events(
    events: Sequence[Mapping[str, Any]], source: str = ""
) -> dict[str, Any]:
    """Reduce a telemetry event stream to one monitor snapshot.

    Pure function of the parsed events, so tests (and ``--once``) can
    feed it a fixed list.  Reads ``fit_begin`` for run shape, ``batch``
    events for progress/loss/worker telemetry, ``health`` events for
    sentinel state and RSS, and ``fit_end`` for completion.
    """
    fit_begin: Mapping[str, Any] | None = None
    fit_end: Mapping[str, Any] | None = None
    batches = [e for e in events if e.get("event") == "batch"]
    last_health: Mapping[str, Any] | None = None
    for event in events:
        kind = event.get("event")
        if kind == "fit_begin":
            fit_begin = event
        elif kind == "fit_end":
            fit_end = event
        elif kind == "health":
            last_health = event

    snap: dict[str, Any] = {
        "schema": MONITOR_SCHEMA,
        "source": source,
        "n_events": len(events),
        "status": "waiting",
        "trainer": None,
        "total_batches": None,
        "step": None,
        "progress": None,
        "pairs": None,
        "pairs_per_sec": None,
        "eta_s": None,
        "loss": {},
        "loss_trend": None,
        "rss_mb": None,
        "health": None,
        "workers": None,
    }
    if not events:
        return snap

    snap["status"] = "done" if fit_end is not None else "running"
    snap["trainer"] = events[-1].get("trainer")

    total_batches = batch_size = None
    if fit_begin is not None:
        total_batches = fit_begin.get("total_batches") or None
        batch_size = fit_begin.get("batch_size") or None
        snap["total_batches"] = total_batches

    if batches:
        last = batches[-1]
        step = last.get("step")
        snap["step"] = step
        snap["pairs"] = last.get("pairs")
        rate = last.get("pairs_per_sec")
        snap["pairs_per_sec"] = rate
        if total_batches and step is not None:
            snap["progress"] = round(min(1.0, (step + 1) / total_batches), 4)
            if batch_size and rate and fit_end is None:
                remaining = max(0, total_batches - step - 1) * batch_size
                snap["eta_s"] = round(remaining / max(rate, 1e-9), 1)
        snap["loss"] = {
            term: last[term] for term in LOSS_TERMS if term in last
        }
        snap["loss_trend"] = _loss_trend(batches)
        snap["workers"] = _worker_summary(last)

    if fit_end is not None:
        snap["pairs"] = fit_end.get("n_pairs_trained", snap["pairs"])
        snap["pairs_per_sec"] = fit_end.get(
            "pairs_per_sec", snap["pairs_per_sec"]
        )
        snap["eta_s"] = 0.0

    if last_health is not None:
        snap["rss_mb"] = last_health.get("rss_mb")
        snap["health"] = {
            key: last_health[key]
            for key in ("policy", "batch", "checks", "warnings", "rollbacks")
            if key in last_health
        }
        for term in LOSS_TERMS:
            ema = last_health.get(f"{term}_ema")
            if ema is not None:
                snap["loss"].setdefault(term, ema)
    return snap


def _loss_trend(batches: Sequence[Mapping[str, Any]]) -> str | None:
    """``"falling"`` / ``"rising"`` / ``"flat"`` over the trend window."""
    series = [b["L"] for b in batches if isinstance(b.get("L"), (int, float))]
    if len(series) < 2:
        return None
    window = series[-TREND_WINDOW:]
    first, last = window[0], window[-1]
    scale = max(abs(first), abs(last), 1e-12)
    change = (last - first) / scale
    if change < -0.01:
        return "falling"
    if change > 0.01:
        return "rising"
    return "flat"


def _worker_summary(batch: Mapping[str, Any]) -> dict[str, Any] | None:
    """HOGWILD fleet state from one batch event (``None`` when sequential)."""
    n = batch.get("workers")
    if not n or n <= 1:
        return None
    summary: dict[str, Any] = {"n": int(n)}
    for key in ("straggler_lag_pairs", "parallel_efficiency",
                "stalled_workers"):
        value = batch.get(f"hogwild.{key}")
        if value is not None:
            summary[key] = value
    ages = [
        batch[f"hogwild.worker.{i}.heartbeat_age_s"]
        for i in range(int(n))
        if f"hogwild.worker.{i}.heartbeat_age_s" in batch
    ]
    if ages:
        summary["max_heartbeat_age_s"] = round(max(ages), 3)
    return summary


def _fmt_eta(seconds: float | None) -> str:
    if seconds is None:
        return "?"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def render_snapshot(snap: Mapping[str, Any]) -> str:
    """One human-readable status line per snapshot."""
    if snap["status"] == "waiting":
        return f"[monitor] waiting for events in {snap['source']}"
    parts = [f"[{snap.get('trainer') or '?'}] {snap['status']}"]
    if snap.get("step") is not None:
        total = snap.get("total_batches") or "?"
        parts.append(f"batch {snap['step'] + 1}/{total}")
    if snap.get("progress") is not None:
        parts.append(f"{snap['progress']:.0%}")
    if snap.get("eta_s") is not None and snap["status"] == "running":
        parts.append(f"eta {_fmt_eta(snap['eta_s'])}")
    if snap.get("pairs_per_sec"):
        parts.append(f"{snap['pairs_per_sec']:,.0f} pairs/s")
    loss = snap.get("loss") or {}
    for term in LOSS_TERMS:
        if term in loss:
            parts.append(f"{term}={loss[term]:.4g}")
    if snap.get("loss_trend"):
        parts.append(f"({snap['loss_trend']})")
    if snap.get("rss_mb") is not None:
        parts.append(f"rss {snap['rss_mb']:.0f}MB")
    health = snap.get("health")
    if health:
        if health.get("warnings"):
            parts.append(f"health:{health['warnings']}w")
        if health.get("rollbacks"):
            parts.append(f"rollbacks:{health['rollbacks']}")
    workers = snap.get("workers")
    if workers:
        lag = workers.get("straggler_lag_pairs")
        eff = workers.get("parallel_efficiency")
        text = f"workers {workers['n']}"
        if eff is not None:
            text += f" eff={eff:.2f}"
        if lag is not None:
            text += f" lag={lag:,}"
        if workers.get("stalled_workers"):
            text += f" STALLED={workers['stalled_workers']}"
        parts.append(text)
    return " | ".join(parts)


def watch(
    target: str | pathlib.Path,
    interval_s: float = 2.0,
    once: bool = False,
    as_json: bool = False,
    stream: IO[str] | None = None,
    max_refreshes: int | None = None,
) -> int:
    """Monitor loop (the ``repro monitor`` implementation); exit code.

    ``once`` renders a single snapshot and returns; otherwise refreshes
    every ``interval_s`` seconds until the run reports ``fit_end`` (or
    Ctrl-C).  JSON goes to stdout for piping; the human-readable tail
    goes to stderr, matching the progress-is-telemetry convention of
    :class:`repro.obs.sinks.ConsoleReporter`.  ``max_refreshes`` bounds
    the loop for tests.
    """
    try:
        path = resolve_telemetry(target)
    except FileNotFoundError as exc:
        print(f"monitor: {exc}", file=sys.stderr)
        return 2
    monitor = RunMonitor(path)
    out = stream if stream is not None else sys.stderr
    refreshes = 0
    try:
        while True:
            snap = monitor.snapshot()
            if as_json:
                print(json.dumps(snap, sort_keys=True),
                      file=stream if stream is not None else sys.stdout)
            else:
                print(render_snapshot(snap), file=out)
            refreshes += 1
            if once or snap["status"] == "done":
                return 0
            if max_refreshes is not None and refreshes >= max_refreshes:
                return 0
            time.sleep(interval_s)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0
