"""The trainer callback protocol and its dispatcher.

Every trainer in :mod:`repro.embedding` drives the same five hooks:

``on_fit_begin(run, logs)``
    Once, before the first batch; ``logs`` carries setup facts (sampler
    preparation time, corpus sizes, ...).
``on_batch_end(run, step, logs)``
    After every SGD batch; ``logs`` carries the loss components
    (``L``, ``L_topo``, ``L_label``, ``L_pattern``), the learning rate
    and throughput fields.
``on_epoch_end(run, epoch, logs)``
    Whenever the consumed-pair count crosses a multiple of the
    per-epoch budget (``|C(G)|`` for DeepDirect).
``on_event(run, name, logs)``
    One-off, out-of-loop facts — e.g. the D-Step's convergence report.
``on_fit_end(run, logs)``
    Once, after the last batch; ``logs`` carries run totals.

Callbacks must be *passive*: they may read ``logs`` and ``run`` but
never consume the trainer's RNG or mutate its state — instrumented and
bare runs are required to be byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping


@dataclass(frozen=True)
class RunInfo:
    """Immutable facts about one training run, shared with every hook."""

    trainer: str
    total_batches: int = 0
    batch_size: int = 0
    config: Mapping[str, Any] = field(default_factory=dict)


class TrainerCallback:
    """Base class (and de-facto protocol) with no-op default hooks.

    Subclass and override only the hooks you need; unimplemented hooks
    cost one no-op call.
    """

    def on_fit_begin(self, run: RunInfo, logs: Mapping[str, Any]) -> None:
        """Called once before training starts."""

    def on_batch_end(
        self, run: RunInfo, step: int, logs: Mapping[str, Any]
    ) -> None:
        """Called after every batch; ``step`` is the 0-based batch index."""

    def on_epoch_end(
        self, run: RunInfo, epoch: int, logs: Mapping[str, Any]
    ) -> None:
        """Called when training crosses an epoch boundary."""

    def on_event(
        self, run: RunInfo, name: str, logs: Mapping[str, Any]
    ) -> None:
        """Called for one-off named events (e.g. ``"dstep"``)."""

    def on_fit_end(self, run: RunInfo, logs: Mapping[str, Any]) -> None:
        """Called once after the last batch."""

    def close(self) -> None:
        """Release any held resources (files, handles); idempotent."""


class CallbackList(TrainerCallback):
    """Dispatches every hook to its callbacks in registration order."""

    def __init__(
        self, callbacks: Iterable[TrainerCallback] | None = None
    ) -> None:
        self.callbacks: list[TrainerCallback] = list(callbacks or [])

    def __bool__(self) -> bool:
        return bool(self.callbacks)

    def __len__(self) -> int:
        return len(self.callbacks)

    def on_fit_begin(self, run: RunInfo, logs: Mapping[str, Any]) -> None:
        for callback in self.callbacks:
            callback.on_fit_begin(run, logs)

    def on_batch_end(
        self, run: RunInfo, step: int, logs: Mapping[str, Any]
    ) -> None:
        for callback in self.callbacks:
            callback.on_batch_end(run, step, logs)

    def on_epoch_end(
        self, run: RunInfo, epoch: int, logs: Mapping[str, Any]
    ) -> None:
        for callback in self.callbacks:
            callback.on_epoch_end(run, epoch, logs)

    def on_event(
        self, run: RunInfo, name: str, logs: Mapping[str, Any]
    ) -> None:
        for callback in self.callbacks:
            callback.on_event(run, name, logs)

    def on_fit_end(self, run: RunInfo, logs: Mapping[str, Any]) -> None:
        for callback in self.callbacks:
            callback.on_fit_end(run, logs)

    def close(self) -> None:
        for callback in self.callbacks:
            callback.close()
