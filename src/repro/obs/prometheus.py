"""Prometheus text exposition for a :class:`MetricsRegistry`.

:func:`render_prometheus` turns a registry into the standard
`text-based exposition format`__ — ``# TYPE`` headers, cumulative
``_bucket{le="..."}`` series, ``_sum``/``_count`` — so a Prometheus (or
VictoriaMetrics / Grafana Agent) scrape of ``GET
/metrics?format=prometheus`` works against the serving tier with zero
extra dependencies.  :func:`parse_prometheus` is the matching reader:
it parses the exposition text back into sample dicts, which the test
suite uses to prove the rendering round-trips to the exact counts and
the load harness uses to read server-side histograms.

__ https://prometheus.io/docs/instrumenting/exposition_formats/

Mapping of the :mod:`repro.obs.metrics` primitives:

============  =======================  =================================
primitive     Prometheus type          series
============  =======================  =================================
Counter       counter                  ``<name>_total``
Gauge         gauge                    ``<name>``
EMATracker    gauge                    ``<name>`` (the current average)
Timer         counter ×2               ``<name>_seconds_total``,
                                       ``<name>_calls_total``
Histogram     histogram                ``<name>_bucket{le=...}``,
                                       ``<name>_sum``, ``<name>_count``
============  =======================  =================================

Metric names are sanitised to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): every other character — the registry
convention uses dots, e.g. ``serve.requests`` — becomes ``_``.
"""

from __future__ import annotations

import math
import re
from typing import Any, Mapping

from .metrics import Counter, EMATracker, Gauge, Histogram, MetricsRegistry, Timer

#: Content type Prometheus scrapers expect from a text exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"')


def sanitize_metric_name(name: str) -> str:
    """``serve.latency_ms`` → ``serve_latency_ms`` (valid grammar)."""
    name = _INVALID_CHARS.sub("_", name)
    if not name or not re.match(r"[a-zA-Z_:]", name[0]):
        name = "_" + name
    return name


def _fmt(value: float) -> str:
    """Render a sample value; Prometheus spells infinity ``+Inf``."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    registry: MetricsRegistry, namespace: str = ""
) -> str:
    """The registry as Prometheus exposition text (one trailing ``\\n``).

    ``namespace`` is an optional prefix joined with ``_`` (Prometheus
    convention), e.g. ``namespace="repro"`` turns ``serve.requests``
    into ``repro_serve_requests_total``.
    """
    prefix = f"{sanitize_metric_name(namespace)}_" if namespace else ""
    lines: list[str] = []

    def emit(name: str, kind: str, samples: list[tuple[str, float]]) -> None:
        lines.append(f"# TYPE {name} {kind}")
        for suffix_and_labels, value in samples:
            lines.append(f"{name}{suffix_and_labels} {_fmt(value)}")

    for raw_name, metric in registry.items():
        name = prefix + sanitize_metric_name(raw_name)
        if isinstance(metric, Counter):
            emit(f"{name}_total", "counter", [("", float(metric.value))])
        elif isinstance(metric, Gauge):
            emit(name, "gauge", [("", float(metric.value))])
        elif isinstance(metric, EMATracker):
            value = metric.value
            if value is not None:
                emit(name, "gauge", [("", float(value))])
        elif isinstance(metric, Timer):
            emit(
                f"{name}_seconds_total",
                "counter",
                [("", float(metric.total_seconds))],
            )
            emit(
                f"{name}_calls_total",
                "counter",
                [("", float(metric.n_calls))],
            )
        elif isinstance(metric, Histogram):
            cumulative = metric.cumulative()
            samples = [
                (f'_bucket{{le="{_fmt(bound)}"}}', float(n))
                for bound, n in zip(metric.bounds, cumulative)
            ]
            samples.append(('_bucket{le="+Inf"}', float(cumulative[-1])))
            lines.append(f"# TYPE {name} histogram")
            for suffix, value in samples:
                lines.append(f"{name}{suffix} {_fmt(value)}")
            lines.append(f"{name}_sum {_fmt(metric.sum)}")
            lines.append(f"{name}_count {_fmt(float(metric.count))}")
    return "\n".join(lines) + "\n"


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_prometheus(text: str) -> dict[str, dict[str, Any]]:
    """Parse exposition text back into metric families.

    Returns ``{family: {"type": ..., "samples": [(name, labels, value),
    ...]}}`` where ``labels`` is a plain dict.  Sample series that carry
    a recognised suffix (``_bucket``/``_sum``/``_count``/``_total``)
    attach to the family the preceding ``# TYPE`` line declared, which
    is how real scrapers group histogram series.  Raises
    :class:`ValueError` on lines that fit neither the comment nor the
    sample grammar.
    """
    families: dict[str, dict[str, Any]] = {}
    current: str | None = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                current = parts[2]
                families[current] = {"type": parts[3], "samples": []}
            continue  # HELP/other comments are legal and ignored
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparsable sample {line!r}")
        name = match.group("name")
        labels = {
            m.group("key"): m.group("value")
            for m in _LABEL.finditer(match.group("labels") or "")
        }
        value = _parse_value(match.group("value"))
        family = current if current and name.startswith(current) else name
        families.setdefault(family, {"type": "untyped", "samples": []})
        families[family]["samples"].append((name, labels, value))
    return families


def histogram_from_samples(
    family: Mapping[str, Any],
) -> dict[str, Any]:
    """Reassemble one parsed histogram family into buckets/sum/count.

    Returns ``{"buckets": [(upper_bound, cumulative_count), ...],
    "sum": float, "count": int}`` with buckets sorted by bound
    (``+Inf`` last) — the shape the round-trip tests compare against
    :meth:`Histogram.cumulative`.
    """
    buckets: list[tuple[float, int]] = []
    total = count = None
    for name, labels, value in family["samples"]:
        if name.endswith("_bucket"):
            buckets.append((_parse_value(labels["le"]), int(value)))
        elif name.endswith("_sum"):
            total = value
        elif name.endswith("_count"):
            count = int(value)
    buckets.sort(key=lambda item: item[0])
    return {"buckets": buckets, "sum": total, "count": count}
