"""Structured JSONL access logs and request-id generation.

The serving tier (:mod:`repro.serve.server`) writes one JSON object per
request through an :class:`AccessLog` — method, path, status, latency,
pair count, cache/coalescing detail and the per-request ``request_id``
— replacing the freeform ``BaseHTTPRequestHandler`` stderr lines.  The
same ``request_id`` is attached to the ``serve.request`` trace span, so
a slow request found in the access log can be pulled up on the Perfetto
timeline (and vice versa); ``docs/observability.md`` shows the
correlation workflow.

The writer is thread-safe (handler threads share one log), flushes
after every line (a crashed server leaves a readable prefix, matching
:class:`repro.obs.sinks.JsonlSink`), and prefixes the file with a
schema header line that :func:`read_access_log` strips.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
import uuid
from typing import IO, Any

#: Schema tag on the header line of every access-log file.
ACCESS_LOG_SCHEMA = "repro_access_log/v1"


def new_request_id() -> str:
    """A fresh 16-hex-char request id (collision-safe per deployment)."""
    return uuid.uuid4().hex[:16]


class AccessLog:
    """Thread-safe one-JSON-object-per-line request log.

    >>> log = AccessLog("access.jsonl")          # doctest: +SKIP
    >>> log.log(request_id="ab12", method="POST", path="/score",
    ...         status=200, latency_ms=1.5)      # doctest: +SKIP

    Every record automatically gains a wall-clock ``ts`` (seconds since
    the epoch) unless the caller supplies one.  Pass an open ``stream``
    instead of a path to keep the log in memory (tests) or on stderr.
    """

    def __init__(
        self,
        path: str | pathlib.Path | None = None,
        stream: IO[str] | None = None,
    ) -> None:
        if (path is None) == (stream is None):
            raise ValueError("pass exactly one of path or stream")
        self.path = pathlib.Path(path) if path is not None else None
        self._stream = stream
        self._lock = threading.Lock()
        self._wrote_header = False
        self._closed = False
        self.n_records = 0

    def _file(self) -> IO[str]:
        if self._closed:
            raise ValueError("access log is closed")
        if self._stream is None:
            assert self.path is not None
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(self.path, "w", encoding="utf-8")
        return self._stream

    def log(self, **fields: Any) -> dict[str, Any]:
        """Append one record; returns the record as written."""
        record = {"ts": time.time(), **fields}
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            handle = self._file()
            if not self._wrote_header:
                handle.write(
                    json.dumps(
                        {"schema": ACCESS_LOG_SCHEMA},
                        separators=(",", ":"),
                    )
                    + "\n"
                )
                self._wrote_header = True
            handle.write(line + "\n")
            handle.flush()
            self.n_records += 1
        return record

    def close(self) -> None:
        """Close a path-backed log (idempotent); streams stay open."""
        with self._lock:
            if self.path is not None:
                if self._stream is not None:
                    self._stream.close()
                    self._stream = None
                self._closed = True

    def __enter__(self) -> "AccessLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_access_log(path: str | pathlib.Path) -> list[dict[str, Any]]:
    """Parse an access-log file back into its records (header dropped)."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("schema") == ACCESS_LOG_SCHEMA:
                continue
            records.append(record)
    return records
