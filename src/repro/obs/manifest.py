"""Run manifests: one JSON file that pins down what a run *was*.

A manifest captures everything needed to interpret (and re-run) a
training run months later: the command and configuration, the seed,
a content fingerprint of the dataset, package versions and platform,
the per-phase wall-clock breakdown from the tracer, and the final
metrics.  ``repro discover --manifest manifest.json`` writes one per
run; ``repro report`` renders it and ``repro report --diff A B``
compares two.

Schema (``repro_manifest/v1``) — all keys always present::

    {"schema", "created",            # ISO timestamp (wall clock)
     "command", "argv",              # what was run
     "seed", "config",               # how it was configured
     "dataset",                      # {"fingerprint", "n_nodes", ...}
     "platform", "packages",         # where it ran
     "phases",                       # {name: {"total_s", "self_s", "count"}}
     "metrics",                      # final numbers (accuracy, memory, ...)
     "health"}                       # HealthMonitor.report() or None
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys
import time
from typing import Any, Mapping

import numpy as np

#: Schema tag written into every manifest.
MANIFEST_SCHEMA = "repro_manifest/v1"


def network_fingerprint(network) -> dict[str, Any]:
    """Content fingerprint of a :class:`~repro.graph.MixedSocialNetwork`.

    Hashes the node count and the oriented tie arrays (sources,
    destinations, kinds) via :func:`repro.graph.store.tie_fingerprint`,
    which canonicalises the column dtypes first — so the digest is
    identical whether the network lives in memory (int32 columns) or
    behind a memory-mapped store, and matches the ``fingerprint`` field
    of a :class:`~repro.graph.store.GraphStore` manifest by
    construction.  Returns the digest plus the shape facts a reader
    wants at a glance.
    """
    # Imported lazily: repro.graph imports repro.obs at module load.
    from ..graph.store import tie_fingerprint

    return {
        "fingerprint": tie_fingerprint(
            network.n_nodes, network.tie_src, network.tie_dst,
            network.tie_kind,
        ),
        "n_nodes": int(network.n_nodes),
        "n_ties": int(network.n_ties),
        "n_undirected": int(network.n_undirected),
    }


def build_manifest(
    *,
    command: str,
    seed: int,
    config: Mapping[str, Any] | None = None,
    dataset: Mapping[str, Any] | None = None,
    phases: Mapping[str, Any] | None = None,
    metrics: Mapping[str, Any] | None = None,
    argv: list[str] | None = None,
    health: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble a manifest dict (see the module docstring for the schema).

    ``health`` is a :meth:`repro.obs.health.HealthMonitor.report` block;
    the key is always present (``None`` when no monitor was attached) so
    readers can distinguish "unmonitored" from "monitored and clean".
    """
    return {
        "schema": MANIFEST_SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "command": command,
        "argv": list(argv) if argv is not None else list(sys.argv[1:]),
        "seed": int(seed),
        "config": dict(config or {}),
        "dataset": dict(dataset or {}),
        "platform": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "system": platform.system(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "packages": {"numpy": np.__version__},
        "phases": dict(phases or {}),
        "metrics": dict(metrics or {}),
        "health": dict(health) if health is not None else None,
    }


def write_manifest(
    manifest: Mapping[str, Any], path: str | pathlib.Path
) -> None:
    """Write ``manifest`` as indented JSON (stable key order)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")


def read_manifest(path: str | pathlib.Path) -> dict[str, Any]:
    """Read a manifest back; raises ``ValueError`` on a wrong schema."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(
            f"{path} is not a {MANIFEST_SCHEMA} manifest "
            f"(schema={data.get('schema') if isinstance(data, dict) else None!r})"
        )
    return data
