"""Telemetry primitives: counters, gauges, EMA trackers and timers.

A :class:`MetricsRegistry` is a flat, name-addressed collection of the
four primitive kinds.  Trainers create (or receive) one registry per
``fit`` call and update it from the hot loop; sinks and reports read a
:meth:`MetricsRegistry.snapshot` — a plain ``dict`` safe to serialise.

Naming convention: every wall-clock-derived field ends in ``_s`` (total
seconds) or ``_per_sec`` (rates).  :func:`repro.obs.strip_volatile`
relies on this to compare telemetry streams across runs.
"""

from __future__ import annotations

import time


class Counter:
    """A monotonically increasing integer count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class EMATracker:
    """Exponential moving average ``v ← (1-α)·v + α·x``.

    The first update seeds the average with the raw sample, so the
    tracker is unbiased from the start (no zero-initialisation warm-up).
    """

    __slots__ = ("alpha", "value", "n_updates")

    def __init__(self, alpha: float = 0.05) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        self.alpha = alpha
        self.value: float | None = None
        self.n_updates = 0

    def update(self, sample: float) -> float:
        sample = float(sample)
        if self.value is None:
            self.value = sample
        else:
            self.value = (1.0 - self.alpha) * self.value + self.alpha * sample
        self.n_updates += 1
        return self.value


class Timer:
    """Accumulating wall-clock timer, usable as a context manager.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.n_calls
    1
    """

    __slots__ = ("total_seconds", "last_seconds", "n_calls", "_start")

    def __init__(self) -> None:
        self.total_seconds = 0.0
        self.last_seconds = 0.0
        self.n_calls = 0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None
        self.last_seconds = time.perf_counter() - self._start
        self.total_seconds += self.last_seconds
        self.n_calls += 1
        self._start = None


def record_worker_stats(
    metrics: "MetricsRegistry",
    worker_stats: "list[dict[str, float]]",
    counter_names: "tuple[str, ...]" = (),
) -> "dict[str, float | int]":
    """Fold per-worker HOGWILD stats into ``metrics``.

    Counters named in ``counter_names`` are merged (summed) across
    workers; every worker additionally contributes a point-in-time
    ``worker<i>_pairs_per_sec`` gauge.  Returns the merged values plus
    the per-worker gauges as one flat dict, ready to splat into an
    ``on_fit_end`` log payload.
    """
    merged: dict[str, float | int] = {}
    for name in counter_names:
        counter = metrics.counter(name)
        counter.inc(sum(int(stats.get(name, 0)) for stats in worker_stats))
        merged[name] = counter.value
    for i, stats in enumerate(worker_stats):
        gauge = metrics.gauge(f"worker{i}_pairs_per_sec")
        gauge.set(stats.get("pairs_per_sec", 0.0))
        merged[f"worker{i}_pairs_per_sec"] = gauge.value
    return merged


class MetricsRegistry:
    """Flat get-or-create registry of telemetry primitives.

    Each name maps to exactly one primitive; asking for an existing name
    with a different kind is an error (it would silently fork state).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | EMATracker | Timer] = {}

    def _get_or_create(self, name: str, kind: type, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, Gauge)

    def ema(self, name: str, alpha: float = 0.05) -> EMATracker:
        return self._get_or_create(name, EMATracker, lambda: EMATracker(alpha))

    def timer(self, name: str) -> Timer:
        return self._get_or_create(name, Timer, Timer)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> dict[str, float | int | None]:
        """All current values as one flat, JSON-ready dict.

        Timers expand into ``<name>_s`` (total seconds, volatile) and
        ``<name>_calls``; the other kinds contribute their value under
        their own name.
        """
        out: dict[str, float | int | None] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Timer):
                out[f"{name}_s"] = metric.total_seconds
                out[f"{name}_calls"] = metric.n_calls
            else:
                out[name] = metric.value
        return out
