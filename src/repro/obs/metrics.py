"""Telemetry primitives: counters, gauges, EMAs, timers and histograms.

A :class:`MetricsRegistry` is a flat, name-addressed collection of the
five primitive kinds.  Trainers create (or receive) one registry per
``fit`` call and update it from the hot loop; sinks and reports read a
:meth:`MetricsRegistry.snapshot` — a plain ``dict`` safe to serialise.

All mutating primitives are **thread-safe**: the serving tier updates
one shared registry from every ``ThreadingHTTPServer`` handler thread,
so ``inc``/``set``/``update``/``observe`` take a per-instance lock
(uncontended CPython locks cost ~100 ns, far below any instrumented
operation here).

Naming convention: every wall-clock-derived field ends in ``_s`` (total
seconds) or ``_per_sec`` (rates).  :func:`repro.obs.strip_volatile`
relies on this to compare telemetry streams across runs.
"""

from __future__ import annotations

import math
import threading
import time
from bisect import bisect_left
from typing import Iterator, Sequence


class Counter:
    """A monotonically increasing integer count (thread-safe)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        # ``self.value += n`` is a read-modify-write; under concurrent
        # server threads the unlocked form loses increments.
        with self._lock:
            self.value += n


class Gauge:
    """A point-in-time value (last write wins, thread-safe)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class EMATracker:
    """Exponential moving average ``v ← (1-α)·v + α·x`` (thread-safe).

    The first update seeds the average with the raw sample, so the
    tracker is unbiased from the start (no zero-initialisation warm-up).
    """

    __slots__ = ("alpha", "value", "n_updates", "_lock")

    def __init__(self, alpha: float = 0.05) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        self.alpha = alpha
        self.value: float | None = None
        self.n_updates = 0
        self._lock = threading.Lock()

    def update(self, sample: float) -> float:
        sample = float(sample)
        with self._lock:
            if self.value is None:
                self.value = sample
            else:
                self.value = (
                    1.0 - self.alpha
                ) * self.value + self.alpha * sample
            self.n_updates += 1
            return self.value


def log_buckets(
    lo: float, hi: float, per_decade: int = 4
) -> tuple[float, ...]:
    """Log-spaced bucket upper bounds from ``lo`` to at least ``hi``.

    ``per_decade`` bounds per power of ten; the returned tuple always
    starts at ``lo`` and ends at or above ``hi``.

    >>> log_buckets(1.0, 100.0, per_decade=1)
    (1.0, 10.0, 100.0)
    """
    if not 0.0 < lo < hi:
        raise ValueError("need 0 < lo < hi")
    if per_decade < 1:
        raise ValueError("per_decade must be positive")
    step = 10.0 ** (1.0 / per_decade)
    bounds = [lo]
    while bounds[-1] < hi * (1.0 - 1e-12):
        bounds.append(bounds[-1] * step)
    return tuple(bounds)


def linear_buckets(lo: float, hi: float, n: int) -> tuple[float, ...]:
    """``n`` evenly spaced bucket upper bounds from ``lo`` to ``hi``.

    >>> linear_buckets(0.25, 1.0, 4)
    (0.25, 0.5, 0.75, 1.0)
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not lo < hi:
        raise ValueError("need lo < hi")
    width = (hi - lo) / (n - 1) if n > 1 else 0.0
    return tuple(lo + i * width for i in range(n))


#: Default latency bucket bounds (milliseconds): log-spaced from 10 µs
#: to 100 s, four per decade — wide enough for loopback micro-batches
#: and pathological tail requests alike.
DEFAULT_LATENCY_BUCKETS_MS = log_buckets(0.01, 1e5, per_decade=4)


class Histogram:
    """Fixed-bucket histogram with exact counts (thread-safe).

    Samples land in the first bucket whose upper *bound* is ``>=`` the
    sample; values beyond the last bound go to an implicit overflow
    (``+Inf``) bucket.  Alongside the per-bucket counts the histogram
    keeps the exact ``count``/``sum``/``min``/``max``, so means and
    totals are exact while quantiles are estimated by linear
    interpolation inside the containing bucket (clamped to the observed
    ``[min, max]``; with the default log-spaced latency buckets the
    relative error is bounded by the bucket ratio, ~78 %-wide decades/4).

    Histograms with identical bounds **merge** exactly
    (:meth:`merge` adds counts bucket-wise), so per-snapshot or
    per-process histograms fold into one without losing tail fidelity —
    the property Prometheus relies on for scrape-side aggregation.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max", "_lock")

    def __init__(self, buckets: Sequence[float] | None = None) -> None:
        bounds = tuple(
            float(b)
            for b in (
                DEFAULT_LATENCY_BUCKETS_MS if buckets is None else buckets
            )
        )
        if not bounds:
            raise ValueError("at least one bucket bound is required")
        if any(b != b or math.isinf(b) for b in bounds):
            raise ValueError("bucket bounds must be finite")
        if any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: overflow (+Inf)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s counts into this histogram (same bounds)."""
        if other.bounds != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        with other._lock:
            counts = list(other.counts)
            count, total = other.count, other.sum
            lo, hi = other.min, other.max
        with self._lock:
            for i, n in enumerate(counts):
                self.counts[i] += n
            self.count += count
            self.sum += total
            self.min = min(self.min, lo)
            self.max = max(self.max, hi)
        return self

    def cumulative(self) -> list[int]:
        """Cumulative counts per bound plus the ``+Inf`` total.

        ``cumulative()[i]`` is the exact number of samples ``<=
        bounds[i]``; the final entry equals :attr:`count`.  This is the
        Prometheus ``_bucket`` series and is monotone by construction.
        """
        with self._lock:
            out = []
            running = 0
            for n in self.counts:
                running += n
                out.append(running)
            return out

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile; ``None`` on an empty histogram."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must lie in [0, 1]")
        with self._lock:
            if self.count == 0:
                return None
            rank = q * self.count
            running = 0.0
            for i, n in enumerate(self.counts):
                if n == 0:
                    continue
                if running + n >= rank:
                    lower = self.bounds[i - 1] if i > 0 else min(
                        self.min, self.bounds[0]
                    )
                    upper = (
                        self.bounds[i] if i < len(self.bounds) else self.max
                    )
                    fraction = (rank - running) / n
                    value = lower + (upper - lower) * max(fraction, 0.0)
                    return min(max(value, self.min), self.max)
                running += n
            return self.max  # pragma: no cover - defensive (q == 1 path)

    def summary(self) -> dict[str, float | int | None]:
        """Exact count/sum/min/max plus p50/p95/p99 estimates."""
        with self._lock:
            empty = self.count == 0
            out: dict[str, float | int | None] = {
                "count": self.count,
                "sum": self.sum,
                "min": None if empty else self.min,
                "max": None if empty else self.max,
            }
        for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            out[name] = self.quantile(q)
        return out


class Timer:
    """Accumulating wall-clock timer, usable as a context manager.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.n_calls
    1
    """

    __slots__ = ("total_seconds", "last_seconds", "n_calls", "_start")

    def __init__(self) -> None:
        self.total_seconds = 0.0
        self.last_seconds = 0.0
        self.n_calls = 0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None
        self.last_seconds = time.perf_counter() - self._start
        self.total_seconds += self.last_seconds
        self.n_calls += 1
        self._start = None


def hogwild_aggregates(
    worker_stats: "list[dict[str, float]]",
) -> "dict[str, float | int]":
    """Fleet-level health numbers derived from per-worker stats.

    * ``hogwild.straggler_lag_pairs`` — pairs the slowest worker trails
      the fastest by (0 on a perfectly balanced run),
    * ``hogwild.parallel_efficiency`` — total pairs done divided by
      ``workers x max(pairs)``: 1.0 means every worker kept pace with
      the fastest, approaching ``1/workers`` means one worker did all
      the work,
    * ``hogwild.stalled_workers`` — workers flagged stalled by the
      parent's heartbeat watchdog (``stalled`` key, when present).
    """
    pairs = [float(stats.get("pairs", 0.0)) for stats in worker_stats]
    out: dict[str, float | int] = {}
    if pairs:
        top = max(pairs)
        out["hogwild.straggler_lag_pairs"] = top - min(pairs)
        out["hogwild.parallel_efficiency"] = (
            sum(pairs) / (len(pairs) * top) if top > 0 else 1.0
        )
    out["hogwild.stalled_workers"] = sum(
        1 for stats in worker_stats if stats.get("stalled")
    )
    return out


#: Per-worker stat keys re-published as ``hogwild.worker.<i>.<key>``
#: gauges (heartbeat ages are volatile, hence the ``_s`` suffix).
_WORKER_GAUGE_KEYS = ("pairs", "batches", "pairs_per_sec", "heartbeat_age_s")


def record_worker_stats(
    metrics: "MetricsRegistry",
    worker_stats: "list[dict[str, float]]",
    counter_names: "tuple[str, ...]" = (),
) -> "dict[str, float | int]":
    """Fold per-worker HOGWILD stats into ``metrics``.

    Counters named in ``counter_names`` are merged (summed) across
    workers; every worker additionally contributes a legacy
    ``worker<i>_pairs_per_sec`` gauge plus the structured
    ``hogwild.worker.<i>.*`` gauges (pairs, batches, throughput,
    heartbeat age), and the fleet-level :func:`hogwild_aggregates`
    gauges.  Returns everything as one flat dict, ready to splat into
    an ``on_fit_end`` log payload.
    """
    merged: dict[str, float | int] = {}
    for name in counter_names:
        counter = metrics.counter(name)
        counter.inc(sum(int(stats.get(name, 0)) for stats in worker_stats))
        merged[name] = counter.value
    for i, stats in enumerate(worker_stats):
        gauge = metrics.gauge(f"worker{i}_pairs_per_sec")
        gauge.set(stats.get("pairs_per_sec", 0.0))
        merged[f"worker{i}_pairs_per_sec"] = gauge.value
        for key in _WORKER_GAUGE_KEYS:
            if key in stats:
                name = f"hogwild.worker.{i}.{key}"
                metrics.gauge(name).set(float(stats[key]))
                merged[name] = float(stats[key])
    for name, value in hogwild_aggregates(worker_stats).items():
        metrics.gauge(name).set(float(value))
        merged[name] = value
    return merged


class MetricsRegistry:
    """Flat get-or-create registry of telemetry primitives.

    Each name maps to exactly one primitive; asking for an existing name
    with a different kind is an error (it would silently fork state).
    """

    def __init__(self) -> None:
        self._metrics: dict[
            str, Counter | Gauge | EMATracker | Timer | Histogram
        ] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: type, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, Gauge)

    def ema(self, name: str, alpha: float = 0.05) -> EMATracker:
        return self._get_or_create(name, EMATracker, lambda: EMATracker(alpha))

    def timer(self, name: str) -> Timer:
        return self._get_or_create(name, Timer, Timer)

    def histogram(
        self, name: str, buckets: Sequence[float] | None = None
    ) -> Histogram:
        """Get-or-create a histogram; ``buckets`` only applies on create
        (like :meth:`ema`'s ``alpha``)."""
        return self._get_or_create(
            name, Histogram, lambda: Histogram(buckets)
        )

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def items(
        self,
    ) -> Iterator[tuple[str, "Counter | Gauge | EMATracker | Timer | Histogram"]]:
        """``(name, primitive)`` pairs, in registration order."""
        with self._lock:
            pairs = list(self._metrics.items())
        return iter(pairs)

    def snapshot(self) -> dict[str, float | int | None]:
        """All current values as one flat, JSON-ready dict.

        Timers expand into ``<name>_s`` (total seconds, volatile) and
        ``<name>_calls``; histograms expand into ``<name>_count``,
        ``<name>_sum``, ``<name>_min``/``_max`` and the ``_p50``/
        ``_p95``/``_p99`` quantile estimates; the other kinds contribute
        their value under their own name.
        """
        out: dict[str, float | int | None] = {}
        for name, metric in self.items():
            if isinstance(metric, Timer):
                out[f"{name}_s"] = metric.total_seconds
                out[f"{name}_calls"] = metric.n_calls
            elif isinstance(metric, Histogram):
                for key, value in metric.summary().items():
                    out[f"{name}_{key}"] = value
            else:
                out[name] = metric.value
        return out
