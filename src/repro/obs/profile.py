"""Phase-scoped memory profiling (the ``--manifest``/``--trace`` runs).

Two complementary measurements per named phase:

* **RSS** — the process resident set read from ``/proc/self/statm``
  (cheap: one small read), answering "how much memory does the run
  hold right now", allocator caches and numpy buffers included.
* **tracemalloc peak** — the peak *Python-allocated* bytes inside the
  phase, answering "how much did this phase itself allocate".  Opt-in
  per profiler because tracemalloc slows allocation-heavy code.

Gauges land in a :class:`~repro.obs.metrics.MetricsRegistry` under
``<phase>_rss_mb`` / ``<phase>_rss_delta_mb`` / ``<phase>_py_peak_mb``
— the ``_mb`` suffix marks them volatile (see
:func:`repro.obs.is_volatile`), so memory numbers never break
same-seed telemetry comparisons.

For long phases, :class:`RssSampler` additionally samples RSS on a
background thread at a fixed interval — the low-overhead mode for
watching a whole training run instead of bracketing one phase.

A profiler built with ``enabled=False`` (the default path when no
observability flag is set) hands out the shared no-op context manager,
so dormant instrumentation costs one attribute check.
"""

from __future__ import annotations

import os
import threading
import time
import tracemalloc
from contextlib import contextmanager
from typing import Iterator

from .metrics import MetricsRegistry
from .trace import NULL_SPAN, span as _trace_span

_MB = 1024.0 * 1024.0


def rss_bytes() -> int | None:
    """Current resident-set size, or ``None`` where unsupported.

    Reads ``/proc/self/statm`` (Linux); falls back to
    ``resource.getrusage`` peak RSS elsewhere (a peak, not a point
    value, but monotone — still useful for budget checks).
    """
    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return int(peak) * (1 if peak > 1 << 30 else 1024)
    except Exception:  # pragma: no cover - exotic platforms
        return None


class MemoryProfiler:
    """Bracket pipeline phases and record their memory cost as gauges.

    >>> profiler = MemoryProfiler()
    >>> with profiler.phase("estep"):
    ...     data = list(range(1000))
    >>> profiler.metrics.gauge("estep_rss_mb").value >= 0.0
    True
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        enabled: bool = True,
        use_tracemalloc: bool = True,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.enabled = enabled
        self.use_tracemalloc = use_tracemalloc
        self._depth = 0
        self._started_tracemalloc = False

    def phase(self, name: str):
        """Context manager measuring one phase; no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return self._measure(name)

    @contextmanager
    def _measure(self, name: str) -> Iterator[None]:
        before = rss_bytes()
        if self.use_tracemalloc:
            if self._depth == 0 and not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
            tracemalloc.reset_peak()
        self._depth += 1
        # Mirror the phase into the active trace (if any), so memory
        # phases and timing spans line up in one view.
        with _trace_span(f"profile.{name}"):
            try:
                yield
            finally:
                self._depth -= 1
                after = rss_bytes()
                if after is not None:
                    self.metrics.gauge(f"{name}_rss_mb").set(after / _MB)
                    if before is not None:
                        self.metrics.gauge(f"{name}_rss_delta_mb").set(
                            (after - before) / _MB
                        )
                if self.use_tracemalloc and tracemalloc.is_tracing():
                    _, peak = tracemalloc.get_traced_memory()
                    self.metrics.gauge(f"{name}_py_peak_mb").set(peak / _MB)
                    if self._depth == 0 and self._started_tracemalloc:
                        tracemalloc.stop()
                        self._started_tracemalloc = False

    def snapshot(self) -> dict[str, float | int | None]:
        """All recorded gauges as one flat dict (manifest-ready)."""
        return self.metrics.snapshot()


class RssSampler:
    """Background-thread RSS sampling: the low-overhead watch mode.

    Samples ``(seconds_since_start, rss_mb)`` pairs every ``interval``
    seconds until stopped.  Sampling reads one proc file per tick, so
    even a 10 ms interval stays far below measurable training overhead.

    Usable as a context manager::

        with RssSampler(interval=0.05) as sampler:
            train()
        peak = sampler.peak_mb
    """

    def __init__(self, interval: float = 0.05) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.samples: list[tuple[float, float]] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._start_time = 0.0

    def _run(self) -> None:
        while not self._stop.is_set():
            rss = rss_bytes()
            if rss is not None:
                self.samples.append(
                    (time.perf_counter() - self._start_time, rss / _MB)
                )
            self._stop.wait(self.interval)

    def start(self) -> "RssSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._start_time = time.perf_counter()
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> list[tuple[float, float]]:
        """Stop sampling (idempotent) and return the collected samples."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
        return self.samples

    @property
    def peak_mb(self) -> float:
        """Largest sampled RSS (0.0 before any sample lands)."""
        return max((rss for _, rss in self.samples), default=0.0)

    def __enter__(self) -> "RssSampler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
