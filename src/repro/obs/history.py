"""Run-history store: trends and regressions across past runs.

``repro report --history DIR`` indexes every run artefact found under
a directory — ``repro_manifest/v1`` manifests and ``bench_estep/v1``
perf reports — orders them chronologically, and renders per-metric
trend tables plus regression flags for the latest run against its
predecessor.  The point is the *trajectory*: a single manifest says how
one run went; the history says whether the project is getting faster,
more accurate, and healthier over time.

Each indexed run is reduced to a small canonical metric set (see
:data:`HISTORY_METRICS`) so manifests from ``discover`` runs, ``serve``
runs, and perf-bench reports line up in one table.  Metrics absent from
a given artefact are simply blank — a bench report has no accuracy, a
discover manifest has no serving p99.

Ordering: manifests carry a ``created`` ISO timestamp and bench reports
a ``timestamp``; artefacts missing both (hand-edited files) fall back
to file modification time, converted to the same ISO format so the sort
key is uniform.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Any, Mapping, Sequence

from .manifest import MANIFEST_SCHEMA

#: Schema tag of the ``--json`` history output.
HISTORY_SCHEMA = "repro_history/v1"

#: Perf-report schema recognised next to manifests (benchmarks.perf).
BENCH_SCHEMA = "bench_estep/v1"

#: Canonical metric names and the direction that counts as *better*.
#: The regression detector only understands metrics listed here.
HISTORY_METRICS: tuple[tuple[str, str], ...] = (
    ("pairs_per_sec", "higher"),
    ("accuracy", "higher"),
    ("auc", "higher"),
    ("final_loss", "lower"),
    ("rss_mb", "lower"),
    ("serve_p50_ms", "lower"),
    ("load_p99_ms", "lower"),
    ("load_rps", "higher"),
)

#: Manifest ``metrics`` keys folded into each canonical metric (first
#: present wins).  Keeps CLI commands free to record their natural
#: names while the history table stays uniform.
_MANIFEST_ALIASES: dict[str, tuple[str, ...]] = {
    "pairs_per_sec": ("pairs_per_sec",),
    "accuracy": ("accuracy",),
    "auc": ("auc", "roc_auc"),
    "rss_mb": ("rss_mb",),
    "serve_p50_ms": ("p50_ms", "latency_p50_ms"),
    "load_rps": ("rps",),
}


def _mtime_iso(path: pathlib.Path) -> str:
    return time.strftime(
        "%Y-%m-%dT%H:%M:%S", time.localtime(path.stat().st_mtime)
    )


def _from_manifest(data: Mapping[str, Any]) -> dict[str, float]:
    """Canonical metrics of one manifest (see :data:`_MANIFEST_ALIASES`)."""
    metrics: dict[str, float] = {}
    recorded = data.get("metrics") or {}
    for canonical, aliases in _MANIFEST_ALIASES.items():
        for alias in aliases:
            value = recorded.get(alias)
            if isinstance(value, (int, float)):
                metrics[canonical] = float(value)
                break
    health = data.get("health") or {}
    terms = health.get("terms") or {}
    if isinstance(terms.get("L"), (int, float)):
        metrics["final_loss"] = float(terms["L"])
    return metrics


def _from_bench(data: Mapping[str, Any]) -> dict[str, float]:
    """Canonical metrics of one ``bench_estep/v1`` perf report.

    ``pairs_per_sec`` is the sequential (workers=1) rate of the largest
    tier present — the number the absolute throughput gate floors, so
    it is the honest trajectory metric.
    """
    metrics: dict[str, float] = {}
    best_tier = None
    for entry in (data.get("sizes") or {}).values():
        stats = (entry.get("estep") or {}).get("1")
        if stats and isinstance(stats.get("pairs_per_sec"), (int, float)):
            if best_tier is None or entry.get("n_nodes", 0) > best_tier[0]:
                best_tier = (entry.get("n_nodes", 0), stats["pairs_per_sec"])
    if best_tier is not None:
        metrics["pairs_per_sec"] = float(best_tier[1])
    serving = data.get("serving") or {}
    if isinstance(serving.get("p50_ms"), (int, float)):
        metrics["serve_p50_ms"] = float(serving["p50_ms"])
    load = serving.get("load") or {}
    if isinstance(load.get("p99_ms"), (int, float)):
        metrics["load_p99_ms"] = float(load["p99_ms"])
    if isinstance(load.get("rps"), (int, float)):
        metrics["load_rps"] = float(load["rps"])
    return metrics


def _classify(path: pathlib.Path) -> dict[str, Any] | None:
    """One history entry for ``path``, or ``None`` when unrecognised."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict):
        return None
    schema = data.get("schema")
    if schema == MANIFEST_SCHEMA:
        health = data.get("health") or {}
        return {
            "path": str(path),
            "kind": "manifest",
            "label": str(data.get("command", "?")),
            "created": str(data.get("created") or _mtime_iso(path)),
            "metrics": _from_manifest(data),
            "diverged": bool(health.get("diverged")),
            "health_warnings": int(health.get("warnings") or 0),
        }
    if schema == BENCH_SCHEMA:
        return {
            "path": str(path),
            "kind": "bench",
            "label": "perf",
            "created": str(data.get("timestamp") or _mtime_iso(path)),
            "metrics": _from_bench(data),
            "diverged": False,
            "health_warnings": 0,
        }
    return None


def index_history(directory: str | pathlib.Path) -> list[dict[str, Any]]:
    """All recognised run artefacts under ``directory``, oldest first.

    Scans recursively for ``*.json`` files, keeps manifests and perf
    reports, and sorts by their embedded timestamp (file mtime as the
    fallback).  Unreadable or unrecognised files are skipped silently —
    a run directory full of other artefacts must not break the history.
    """
    root = pathlib.Path(directory)
    if not root.is_dir():
        raise NotADirectoryError(f"{directory} is not a directory")
    entries = []
    for path in sorted(root.rglob("*.json")):
        entry = _classify(path)
        if entry is not None:
            entries.append(entry)
    entries.sort(key=lambda e: (e["created"], e["path"]))
    return entries


def detect_regressions(
    entries: Sequence[Mapping[str, Any]], threshold: float = 0.1
) -> list[dict[str, Any]]:
    """Latest-vs-previous regression flags per canonical metric.

    For each metric, compares the newest entry that records it against
    the most recent *earlier* entry of the same kind that also records
    it (manifests compare to manifests, bench reports to bench reports
    — mixing a 300-node bench with a CLI run would flag noise).  A
    change worse than ``threshold`` (relative) in the metric's bad
    direction is flagged.  A newly-diverged latest manifest is always
    flagged.
    """
    flags: list[dict[str, Any]] = []
    for metric, better in HISTORY_METRICS:
        by_kind: dict[str, list[tuple[str, float]]] = {}
        for entry in entries:
            value = entry["metrics"].get(metric)
            if value is not None:
                by_kind.setdefault(entry["kind"], []).append(
                    (entry["path"], float(value))
                )
        for kind, series in by_kind.items():
            if len(series) < 2:
                continue
            (_, previous), (latest_path, latest) = series[-2], series[-1]
            if previous == 0:
                continue
            change = (latest - previous) / abs(previous)
            worse = -change if better == "higher" else change
            if worse > threshold:
                flags.append(
                    {
                        "metric": metric,
                        "kind": kind,
                        "previous": previous,
                        "latest": latest,
                        "change": change,
                        "path": latest_path,
                    }
                )
    diverged = [e for e in entries if e.get("diverged")]
    if diverged and diverged[-1] is entries[-1]:
        flags.append(
            {
                "metric": "health",
                "kind": entries[-1]["kind"],
                "previous": None,
                "latest": None,
                "change": None,
                "path": entries[-1]["path"],
            }
        )
    return flags


def history_payload(
    entries: Sequence[Mapping[str, Any]], threshold: float = 0.1
) -> dict[str, Any]:
    """Machine-readable history (``repro report --history --json``)."""
    return {
        "schema": HISTORY_SCHEMA,
        "n_runs": len(entries),
        "runs": [dict(e) for e in entries],
        "regressions": detect_regressions(entries, threshold=threshold),
    }


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.4g}"


def render_history(
    entries: Sequence[Mapping[str, Any]], threshold: float = 0.1
) -> tuple[str, bool]:
    """Text trend table + regression lines; ``(text, flagged)``.

    Columns are the canonical metrics at least one run records; rows
    are runs, oldest first, so the table reads top-to-bottom as the
    project's history.
    """
    if not entries:
        return "history: no run artefacts found", False
    present = [
        metric
        for metric, _ in HISTORY_METRICS
        if any(metric in e["metrics"] for e in entries)
    ]
    columns = ["created", "kind", "label", "health"] + present
    rows = []
    for entry in entries:
        health = "DIVERGED" if entry.get("diverged") else (
            f"{entry['health_warnings']}w" if entry.get("health_warnings")
            else "ok"
        )
        row = {
            "created": entry["created"],
            "kind": entry["kind"],
            "label": entry["label"],
            "health": health,
        }
        for metric in present:
            row[metric] = _fmt(entry["metrics"].get(metric))
        rows.append(row)

    widths = {
        column: max(len(column), *(len(str(r[column])) for r in rows))
        for column in columns
    }
    lines = [
        "  ".join(column.ljust(widths[column]) for column in columns),
        "  ".join("-" * widths[column] for column in columns),
    ]
    lines += [
        "  ".join(str(row[column]).ljust(widths[column]) for column in columns)
        for row in rows
    ]

    flags = detect_regressions(entries, threshold=threshold)
    lines.append("")
    lines.append(f"{len(entries)} runs indexed")
    for flag in flags:
        if flag["metric"] == "health":
            lines.append(
                f"REGRESSION health: latest run diverged ({flag['path']})"
            )
        else:
            lines.append(
                f"REGRESSION {flag['metric']} ({flag['kind']}): "
                f"{_fmt(flag['previous'])} -> {_fmt(flag['latest'])} "
                f"({flag['change']:+.1%})"
            )
    if not flags:
        lines.append("no regressions vs the previous run")
    return "\n".join(lines), bool(flags)
