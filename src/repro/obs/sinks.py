"""Pluggable telemetry sinks.

Sinks are :class:`~repro.obs.callbacks.TrainerCallback` subclasses that
turn the hook stream into a flat *event* stream, one dict per hook call:

``{"event": "fit_begin" | "batch" | "epoch" | "fit_end" | <name>,
   "trainer": ..., "step"/"epoch": ..., **logs}``

Three sinks cover the common consumers:

* :class:`InMemorySink` — keeps events in a list; for tests and notebooks.
* :class:`JsonlSink` — appends one JSON object per line; for benchmark
  artefacts and offline analysis.
* :class:`ConsoleReporter` — human-readable checkpoint lines; replaces
  the trainers' historic ad-hoc ``log_every`` prints.

Wall-clock-derived fields end in ``_s`` or ``_per_sec`` by convention
(see :mod:`repro.obs.metrics`); :func:`strip_volatile` removes them so
two same-seed runs can be compared for exact equality.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
from typing import Any, IO, Iterator, Mapping

from .callbacks import RunInfo, TrainerCallback

#: Key suffixes that mark non-deterministic fields: wall-clock-derived
#: (``_s``, ``_per_sec``) and memory-derived (``_mb``, from
#: :mod:`repro.obs.profile` gauges).
VOLATILE_SUFFIXES = ("_s", "_per_sec", "_mb")

#: Exact keys that are wall-clock-derived regardless of suffix.
VOLATILE_FIELDS = frozenset({"wall_time"})


def is_volatile(key: str) -> bool:
    """True when ``key`` names a wall-clock-derived event field."""
    return key in VOLATILE_FIELDS or key.endswith(VOLATILE_SUFFIXES)


def strip_volatile(event: Mapping[str, Any]) -> dict[str, Any]:
    """Drop timer/throughput fields, keeping the deterministic payload."""
    return {k: v for k, v in event.items() if not is_volatile(k)}


def read_jsonl(path: str | pathlib.Path) -> list[dict[str, Any]]:
    """Parse a JSONL telemetry file back into its event dicts."""
    events = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def rotated_paths(path: str | pathlib.Path) -> list[pathlib.Path]:
    """All on-disk segments of a possibly-rotated JSONL series.

    Oldest first, live file last — matching event order when the files
    were written by one rotating :class:`JsonlSink` (``telemetry.jsonl.2``
    is older than ``telemetry.jsonl.1``).
    """
    path = pathlib.Path(path)
    rotated = []
    for candidate in path.parent.glob(f"{path.name}.*"):
        suffix = candidate.name[len(path.name) + 1:]
        if suffix.isdigit():
            rotated.append((int(suffix), candidate))
    out = [p for _, p in sorted(rotated, reverse=True)]
    if path.exists():
        out.append(path)
    return out


def read_jsonl_series(path: str | pathlib.Path) -> list[dict[str, Any]]:
    """Parse a rotated JSONL series (oldest segment first) into events."""
    events: list[dict[str, Any]] = []
    for segment in rotated_paths(path):
        events.extend(read_jsonl(segment))
    return events


class EventSink(TrainerCallback):
    """Shared hook→event conversion; subclasses implement :meth:`emit`."""

    def emit(self, event: dict[str, Any]) -> None:
        raise NotImplementedError

    # -- hook plumbing --------------------------------------------------

    def on_fit_begin(self, run: RunInfo, logs: Mapping[str, Any]) -> None:
        self.emit(
            {
                "event": "fit_begin",
                "trainer": run.trainer,
                "total_batches": run.total_batches,
                "batch_size": run.batch_size,
                "config": dict(run.config),
                **logs,
            }
        )

    def on_batch_end(
        self, run: RunInfo, step: int, logs: Mapping[str, Any]
    ) -> None:
        self.emit(
            {"event": "batch", "trainer": run.trainer, "step": step, **logs}
        )

    def on_epoch_end(
        self, run: RunInfo, epoch: int, logs: Mapping[str, Any]
    ) -> None:
        self.emit(
            {"event": "epoch", "trainer": run.trainer, "epoch": epoch, **logs}
        )

    def on_event(
        self, run: RunInfo, name: str, logs: Mapping[str, Any]
    ) -> None:
        self.emit({"event": name, "trainer": run.trainer, **logs})

    def on_fit_end(self, run: RunInfo, logs: Mapping[str, Any]) -> None:
        self.emit({"event": "fit_end", "trainer": run.trainer, **logs})


class InMemorySink(EventSink):
    """Collects events in :attr:`events`; the test/benchmark sink."""

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def emit(self, event: dict[str, Any]) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        """Events whose ``"event"`` field equals ``kind``."""
        return [e for e in self.events if e.get("event") == kind]

    def series(self, field: str, kind: str = "batch") -> list[Any]:
        """One field across all ``kind`` events, in emission order."""
        return [e[field] for e in self.of_kind(kind) if field in e]


class JsonlSink(EventSink):
    """Writes one JSON object per event line to ``path``.

    Crash safety: the file is truncated on first write of each sink
    instance and **flushed after every event**, so a run that dies
    mid-training leaves a readable prefix of whole lines — never a
    torn line that silently truncates :func:`read_jsonl` output.
    :meth:`close` additionally fsyncs before closing, making the
    artefact durable against power loss, and is idempotent.  One sink
    can span multiple ``fit`` calls — e.g. an E-Step run followed by a
    D-Step event — and all events land in the same file.

    **Rotation**: epoch-scale runs with per-batch health events would
    otherwise grow the file without bound, so ``max_bytes`` caps the
    live file's size.  When a write would push past the cap, the live
    file is closed (fsynced) and shifted to ``<name>.1`` (older
    segments shift to ``.2`` … ``.<keep>``; the oldest is deleted), and
    a fresh live file is opened — the event that triggered rotation
    lands whole in the new file, so every segment still contains only
    whole lines.  :func:`read_jsonl_series` reassembles the full event
    stream.  ``max_bytes=None`` (default) disables rotation.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        max_bytes: int | None = None,
        keep: int = 3,
    ) -> None:
        # _handle first: a validation error below must leave __del__ a
        # closeable object.
        self._handle: IO[str] | None = None
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive (or None)")
        if keep < 1:
            raise ValueError("keep must be at least 1")
        self.path = pathlib.Path(path)
        self.max_bytes = max_bytes
        self.keep = keep
        self._written = 0
        self.n_events = 0
        self.n_rotations = 0

    def _file(self) -> IO[str]:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w", encoding="utf-8")
            self._written = 0
        return self._handle

    def _rotate(self) -> None:
        self.close()
        oldest = self.path.with_name(f"{self.path.name}.{self.keep}")
        oldest.unlink(missing_ok=True)
        for i in range(self.keep - 1, 0, -1):
            src = self.path.with_name(f"{self.path.name}.{i}")
            if src.exists():
                src.rename(self.path.with_name(f"{self.path.name}.{i + 1}"))
        if self.path.exists():
            self.path.rename(self.path.with_name(f"{self.path.name}.1"))
        self.n_rotations += 1

    def emit(self, event: dict[str, Any]) -> None:
        line = json.dumps(event, separators=(",", ":")) + "\n"
        if (
            self.max_bytes is not None
            and self._written > 0
            and self._written + len(line.encode("utf-8")) > self.max_bytes
        ):
            self._rotate()
        handle = self._file()
        handle.write(line)
        handle.flush()
        self._written += len(line.encode("utf-8"))
        self.n_events += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            try:
                os.fsync(self._handle.fileno())
            except OSError:  # pragma: no cover - e.g. pipes/pseudo-files
                pass
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        self.close()


class ConsoleReporter(TrainerCallback):
    """Human-readable progress lines at a fixed batch cadence.

    Prints one line every ``every`` batches (matching the trainers'
    historic ``log_every`` checkpoints), plus begin/end summaries::

        [deepdirect] batch 200/1172 L=2.841 L_topo=2.618 ... lr=0.0207

    Progress is telemetry, not output: lines go to ``sys.stderr`` by
    default (resolved at call time, so test capture works), keeping
    stdout clean for machine-readable command results — ``repro
    discover --progress`` output stays pipeable.  Pass ``stream`` to
    redirect.
    """

    #: Batch-log fields shown, in order, when present.
    BATCH_FIELDS = ("L", "L_ema", "L_topo", "L_label", "L_pattern", "lr",
                    "pairs", "pairs_per_sec")

    def __init__(self, every: int = 200, stream: IO[str] | None = None) -> None:
        if every < 1:
            raise ValueError("every must be at least 1")
        self.every = every
        self.stream = stream

    def _print(self, text: str) -> None:
        print(text, file=self.stream if self.stream is not None else sys.stderr)

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    def on_fit_begin(self, run: RunInfo, logs: Mapping[str, Any]) -> None:
        self._print(
            f"[{run.trainer}] fit: {run.total_batches} batches "
            f"x {run.batch_size}"
        )

    def on_batch_end(
        self, run: RunInfo, step: int, logs: Mapping[str, Any]
    ) -> None:
        if step % self.every:
            return
        fields = " ".join(
            f"{name}={self._fmt(logs[name])}"
            for name in self.BATCH_FIELDS
            if name in logs
        )
        self._print(
            f"[{run.trainer}] batch {step}/{run.total_batches} {fields}"
        )

    def on_event(
        self, run: RunInfo, name: str, logs: Mapping[str, Any]
    ) -> None:
        fields = " ".join(f"{k}={self._fmt(v)}" for k, v in logs.items())
        self._print(f"[{run.trainer}] {name}: {fields}")

    def on_fit_end(self, run: RunInfo, logs: Mapping[str, Any]) -> None:
        fields = " ".join(f"{k}={self._fmt(v)}" for k, v in logs.items())
        self._print(f"[{run.trainer}] done: {fields}")


def iter_batch_events(
    events: list[dict[str, Any]]
) -> Iterator[dict[str, Any]]:
    """Convenience filter over parsed JSONL events."""
    return (e for e in events if e.get("event") == "batch")
