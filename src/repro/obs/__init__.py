"""Training telemetry: metrics, callbacks, sinks, traces and manifests.

The observability layer behind every trainer in :mod:`repro.embedding`
and the ``--telemetry`` / ``--trace`` / ``--manifest`` CLI flags.  See
:mod:`repro.obs.callbacks` for the hook protocol,
:mod:`repro.obs.trace` for span-based pipeline tracing,
:mod:`repro.obs.profile` for phase memory profiling,
:mod:`repro.obs.manifest` for run manifests, and
``docs/observability.md`` / ``docs/paper_mapping.md``
("Instrumentation") for the name → paper-equation maps.
"""

from .callbacks import CallbackList, RunInfo, TrainerCallback
from .manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    network_fingerprint,
    read_manifest,
    write_manifest,
)
from .metrics import (
    Counter,
    EMATracker,
    Gauge,
    MetricsRegistry,
    Timer,
    record_worker_stats,
)
from .profile import MemoryProfiler, RssSampler, rss_bytes
from .report import diff_phases, load_run, render_diff, render_report
from .sinks import (
    ConsoleReporter,
    EventSink,
    InMemorySink,
    JsonlSink,
    VOLATILE_FIELDS,
    VOLATILE_SUFFIXES,
    is_volatile,
    iter_batch_events,
    read_jsonl,
    strip_volatile,
)
from .trace import (
    NULL_SPAN,
    TRACE_SCHEMA,
    Tracer,
    activate,
    current_tracer,
    deactivate,
    phase_totals,
    read_trace,
    span,
    use_tracer,
)

__all__ = [
    "CallbackList",
    "ConsoleReporter",
    "Counter",
    "EMATracker",
    "EventSink",
    "Gauge",
    "InMemorySink",
    "JsonlSink",
    "MANIFEST_SCHEMA",
    "MemoryProfiler",
    "MetricsRegistry",
    "NULL_SPAN",
    "RssSampler",
    "RunInfo",
    "TRACE_SCHEMA",
    "Timer",
    "Tracer",
    "TrainerCallback",
    "VOLATILE_FIELDS",
    "VOLATILE_SUFFIXES",
    "activate",
    "build_manifest",
    "current_tracer",
    "deactivate",
    "diff_phases",
    "is_volatile",
    "iter_batch_events",
    "load_run",
    "network_fingerprint",
    "phase_totals",
    "read_jsonl",
    "read_manifest",
    "read_trace",
    "record_worker_stats",
    "render_diff",
    "render_report",
    "rss_bytes",
    "span",
    "strip_volatile",
    "use_tracer",
    "write_manifest",
]
