"""Training telemetry: metrics, trainer callbacks, and event sinks.

The observability layer behind every trainer in :mod:`repro.embedding`
and the ``--telemetry`` CLI flag.  See :mod:`repro.obs.callbacks` for
the hook protocol and ``docs/paper_mapping.md`` ("Instrumentation") for
the metric-name → paper-equation map.
"""

from .callbacks import CallbackList, RunInfo, TrainerCallback
from .metrics import (
    Counter,
    EMATracker,
    Gauge,
    MetricsRegistry,
    Timer,
    record_worker_stats,
)
from .sinks import (
    ConsoleReporter,
    EventSink,
    InMemorySink,
    JsonlSink,
    VOLATILE_FIELDS,
    VOLATILE_SUFFIXES,
    is_volatile,
    iter_batch_events,
    read_jsonl,
    strip_volatile,
)

__all__ = [
    "CallbackList",
    "ConsoleReporter",
    "Counter",
    "EMATracker",
    "EventSink",
    "Gauge",
    "InMemorySink",
    "JsonlSink",
    "MetricsRegistry",
    "RunInfo",
    "Timer",
    "TrainerCallback",
    "VOLATILE_FIELDS",
    "VOLATILE_SUFFIXES",
    "is_volatile",
    "iter_batch_events",
    "read_jsonl",
    "record_worker_stats",
    "strip_volatile",
]
