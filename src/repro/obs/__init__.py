"""Training telemetry: metrics, callbacks, sinks, traces and manifests.

The observability layer behind every trainer in :mod:`repro.embedding`
and the ``--telemetry`` / ``--trace`` / ``--manifest`` CLI flags.  See
:mod:`repro.obs.callbacks` for the hook protocol,
:mod:`repro.obs.trace` for span-based pipeline tracing,
:mod:`repro.obs.profile` for phase memory profiling,
:mod:`repro.obs.manifest` for run manifests, and
``docs/observability.md`` / ``docs/paper_mapping.md``
("Instrumentation") for the name → paper-equation maps.
"""

from .callbacks import CallbackList, RunInfo, TrainerCallback
from .log import (
    ACCESS_LOG_SCHEMA,
    AccessLog,
    new_request_id,
    read_access_log,
)
from .manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    network_fingerprint,
    read_manifest,
    write_manifest,
)
from .metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS_MS,
    EMATracker,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    linear_buckets,
    log_buckets,
    record_worker_stats,
)
from .profile import MemoryProfiler, RssSampler, rss_bytes
from .prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    histogram_from_samples,
    parse_prometheus,
    render_prometheus,
    sanitize_metric_name,
)
from .report import (
    diff_phases,
    diff_slo,
    load_run,
    render_diff,
    render_report,
)
from .sinks import (
    ConsoleReporter,
    EventSink,
    InMemorySink,
    JsonlSink,
    VOLATILE_FIELDS,
    VOLATILE_SUFFIXES,
    is_volatile,
    iter_batch_events,
    read_jsonl,
    strip_volatile,
)
from .trace import (
    NULL_SPAN,
    TRACE_SCHEMA,
    Tracer,
    activate,
    current_tracer,
    deactivate,
    phase_totals,
    read_trace,
    span,
    use_tracer,
)

__all__ = [
    "ACCESS_LOG_SCHEMA",
    "AccessLog",
    "CallbackList",
    "ConsoleReporter",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "EMATracker",
    "EventSink",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonlSink",
    "MANIFEST_SCHEMA",
    "MemoryProfiler",
    "MetricsRegistry",
    "NULL_SPAN",
    "PROMETHEUS_CONTENT_TYPE",
    "RssSampler",
    "RunInfo",
    "TRACE_SCHEMA",
    "Timer",
    "Tracer",
    "TrainerCallback",
    "VOLATILE_FIELDS",
    "VOLATILE_SUFFIXES",
    "activate",
    "build_manifest",
    "current_tracer",
    "deactivate",
    "diff_phases",
    "diff_slo",
    "histogram_from_samples",
    "is_volatile",
    "iter_batch_events",
    "linear_buckets",
    "load_run",
    "log_buckets",
    "network_fingerprint",
    "new_request_id",
    "parse_prometheus",
    "phase_totals",
    "read_access_log",
    "read_jsonl",
    "read_manifest",
    "read_trace",
    "record_worker_stats",
    "render_diff",
    "render_prometheus",
    "render_report",
    "rss_bytes",
    "sanitize_metric_name",
    "span",
    "strip_volatile",
    "use_tracer",
    "write_manifest",
]
