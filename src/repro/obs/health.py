"""Training-health monitoring: numeric sentinels and divergence policies.

The fused float32 kernels race HOGWILD workers over shared memory —
exactly the regime where a poisoned update (NaN/Inf from a gradient
race, float32 overflow, a runaway learning rate) silently destroys an
epoch-scale run long before the final metrics reveal it.  A
:class:`HealthMonitor` watches a ``fit`` from inside the batch loop:

* **per-term loss sentinels** — every batch's Eq. 18 components
  (``L``, ``L_topo``, ``L_label``, ``L_pattern``) are checked for
  NaN/Inf and folded into per-term EMAs,
* **parameter sentinels** — every ``check_every`` batches the model
  arrays (``M``/``N``/``w'``) are swept with one ``sum()`` pass (NaN and
  Inf propagate through the sum, so a single non-finite entry trips the
  sentinel without a full comparison scan), and located exactly only
  when the cheap pass trips,
* **norm telemetry** — embedding-row and gradient norms land in
  ``health.*`` histograms, so a run drifting toward overflow is visible
  before it diverges.

What happens on a trip is the *policy*:

``"abort"``
    Raise :class:`TrainingDivergedError` naming the term, batch and
    first bad value.  The trainer unwinds; HOGWILD workers are
    terminated by the backend's cleanup path.
``"warn"``
    Count a ``health.warnings`` metric, emit one ``RuntimeWarning`` on
    the first trip, keep training.
``"rollback"``
    Restore the model arrays from the last healthy checkpoint copy
    (taken at the ``check_every`` cadence), count ``health.rollbacks``,
    keep training.  Costs one extra copy of the model per checkpoint.

The monitor's :meth:`report` is the ``health`` block written into run
manifests; :meth:`event_payload` is the periodic ``"health"`` event the
trainers emit through the callback layer (and ``repro monitor`` tails).

A test/CI hook supports *poisoning* a run: set
``REPRO_HEALTH_POISON="<batch>[:<array>]"`` in the environment and the
trainers write one NaN into the named parameter array at that global
batch index (workers inherit the variable, so a HOGWILD run poisons one
worker's shared-memory write path).  The CI health-smoke job uses this
to prove a poisoned fit aborts cleanly end to end.
"""

from __future__ import annotations

import math
import os
import warnings
from typing import Any, Mapping, Sequence

import numpy as np

from .metrics import MetricsRegistry, log_buckets
from .profile import rss_bytes

#: The recognised divergence policies, in escalation order.
HEALTH_POLICIES = ("warn", "abort", "rollback")

#: Environment variable consulted by :func:`maybe_poison`.
POISON_ENV = "REPRO_HEALTH_POISON"

#: Bucket bounds shared by the ``health.*`` norm histograms: training
#: norms span many decades between cold start and divergence.
NORM_BUCKETS = log_buckets(1e-8, 1e8, per_decade=1)


class TrainingDivergedError(RuntimeError):
    """A numeric sentinel tripped under ``policy="abort"``.

    Attributes name the evidence: ``term`` is the loss component or
    parameter array that went non-finite (e.g. ``"L_topo"``,
    ``"param:M"``, ``"worker1:L"``), ``batch`` the global batch index at
    detection, ``value`` the first bad value seen.
    """

    def __init__(self, term: str, batch: int, value: float) -> None:
        self.term = term
        self.batch = int(batch)
        self.value = float(value)
        super().__init__(
            f"training diverged: {term} = {value!r} at batch {batch} "
            f"(policy=abort)"
        )


def _finite(value: float) -> bool:
    return not (math.isnan(value) or math.isinf(value))


class HealthMonitor:
    """Watches one training run for numeric divergence.

    Parameters
    ----------
    policy:
        ``"warn"``, ``"abort"`` or ``"rollback"`` (see module docstring).
    check_every:
        Batch cadence of the parameter-array sweep (and of rollback
        checkpoints).  ``1`` checks every batch — the within-one-batch
        guarantee the divergence tests rely on; the default ``16``
        amortises the sweep on epoch-scale runs.
    ema_alpha:
        Smoothing of the per-term loss EMAs.
    metrics:
        Registry the ``health.*`` metrics land in; a private one is
        created when omitted.  Exposed so the serving/Prometheus tier
        can scrape training health with the existing exposition code.
    """

    def __init__(
        self,
        policy: str = "abort",
        check_every: int = 16,
        ema_alpha: float = 0.05,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if policy not in HEALTH_POLICIES:
            raise ValueError(
                f"policy must be one of {HEALTH_POLICIES}, got {policy!r}"
            )
        if check_every < 1:
            raise ValueError("check_every must be at least 1")
        self.policy = policy
        self.check_every = check_every
        self.ema_alpha = ema_alpha
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.first_bad: dict[str, Any] | None = None
        self.diverged = False
        self.warnings = 0
        self.rollbacks = 0
        self.checks = 0
        self.last_batch = -1
        self._warned = False
        self._snapshots: dict[str, np.ndarray] = {}
        self._snapshot_batch: int | None = None
        self._last_sweep = -1

    # -- sentinels ------------------------------------------------------

    def observe_batch(
        self,
        batch_idx: int,
        losses: Mapping[str, float],
        arrays: Mapping[str, np.ndarray] | None = None,
        grad_norm: float | None = None,
    ) -> None:
        """Feed one batch's loss components (and optionally the arrays).

        Called by the trainers after every SGD batch.  Loss sentinels
        run every call; the parameter sweep runs at the ``check_every``
        cadence (and immediately when a loss sentinel trips, to locate
        the poisoned array).
        """
        self.last_batch = int(batch_idx)
        for term, value in losses.items():
            value = float(value)
            if not _finite(value):
                self._trip(term, batch_idx, value, arrays)
                return
            self.metrics.ema(f"health.{term}_ema", self.ema_alpha).update(
                value
            )
        if grad_norm is not None:
            if not _finite(float(grad_norm)):
                self._trip("grad_norm", batch_idx, float(grad_norm), arrays)
                return
            self.metrics.histogram(
                "health.grad_norm", NORM_BUCKETS
            ).observe(float(grad_norm))
        if arrays is not None and (
            batch_idx - self._last_sweep >= self.check_every
        ):
            self.check_arrays(batch_idx, arrays)

    def check_arrays(
        self, batch_idx: int, arrays: Mapping[str, np.ndarray]
    ) -> bool:
        """Sweep the parameter arrays; returns ``True`` when healthy.

        A healthy sweep also records embedding-norm telemetry and (under
        ``policy="rollback"``) refreshes the checkpoint copies.
        """
        self._last_sweep = int(batch_idx)
        self.checks += 1
        self.metrics.counter("health.checks").inc()
        for name, arr in arrays.items():
            total = float(np.sum(arr))
            if not _finite(total):
                flat = np.asarray(arr).ravel()
                bad = np.flatnonzero(~np.isfinite(flat))
                value = float(flat[bad[0]]) if bad.size else total
                self._trip(f"param:{name}", batch_idx, value, arrays)
                return False
        for name, arr in arrays.items():
            arr = np.asarray(arr)
            if arr.ndim == 2 and arr.size:
                norm = float(
                    np.sqrt((arr * arr).sum() / arr.shape[0])
                )
                self.metrics.gauge(f"health.norm.{name}").set(norm)
                self.metrics.histogram(
                    "health.embedding_norm", NORM_BUCKETS
                ).observe(norm)
        if self.policy == "rollback":
            for name, arr in arrays.items():
                snap = self._snapshots.get(name)
                if snap is None or snap.shape != np.shape(arr):
                    self._snapshots[name] = np.array(arr, copy=True)
                else:
                    np.copyto(snap, arr)
            self._snapshot_batch = int(batch_idx)
        return True

    def observe_workers(
        self,
        batches_done: int,
        worker_losses: Sequence[tuple[int, float]],
        arrays: Mapping[str, np.ndarray] | None = None,
    ) -> None:
        """HOGWILD-side sentinel: per-worker last-batch losses.

        Called from the parent's polling loop with ``(worker_id, loss)``
        pairs read from the shared stats block, plus the live
        shared-memory model views.  A non-finite worker loss names the
        worker in the trip term (``"worker<i>:L"``).
        """
        for worker_id, value in worker_losses:
            value = float(value)
            if not _finite(value):
                self._trip(f"worker{worker_id}:L", batches_done, value,
                           arrays)
                return
            self.metrics.ema("health.L_ema", self.ema_alpha).update(value)
        if arrays is not None and (
            batches_done - self._last_sweep >= self.check_every
        ):
            self.check_arrays(batches_done, arrays)

    # -- policy ---------------------------------------------------------

    def _trip(
        self,
        term: str,
        batch_idx: int,
        value: float,
        arrays: Mapping[str, np.ndarray] | None,
    ) -> None:
        if self.first_bad is None:
            self.first_bad = {
                "term": term,
                "batch": int(batch_idx),
                # str() keeps the manifest strict JSON (json.dump would
                # otherwise emit bare NaN/Infinity tokens).
                "value": str(float(value)),
            }
        if self.policy == "abort":
            self.diverged = True
            raise TrainingDivergedError(term, batch_idx, value)
        if (
            self.policy == "rollback"
            and arrays is not None
            and self._snapshots
        ):
            for name, arr in arrays.items():
                snap = self._snapshots.get(name)
                if snap is not None and snap.shape == np.shape(arr):
                    np.copyto(np.asarray(arr), snap)
            self.rollbacks += 1
            self.metrics.counter("health.rollbacks").inc()
            # The restored checkpoint is healthy again; rearm the sweep
            # so the next batch re-checks instead of waiting a period.
            self._last_sweep = int(batch_idx) - self.check_every
        self.warnings += 1
        self.metrics.counter("health.warnings").inc()
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"training health: {term} went non-finite ({value!r}) at "
                f"batch {batch_idx} (policy={self.policy})",
                RuntimeWarning,
                stacklevel=3,
            )

    # -- reporting ------------------------------------------------------

    def _term_emas(self) -> dict[str, float]:
        out = {}
        for name, metric in self.metrics.items():
            if name.startswith("health.") and name.endswith("_ema"):
                value = getattr(metric, "value", None)
                if value is not None:
                    out[name[len("health."):-len("_ema")]] = float(value)
        return out

    def event_payload(self) -> dict[str, Any]:
        """The periodic ``"health"`` telemetry event (JSONL-ready).

        Volatile fields keep the ``_mb`` suffix convention so same-seed
        telemetry comparisons stay exact (see ``repro.obs.is_volatile``).
        """
        payload: dict[str, Any] = {
            "policy": self.policy,
            "batch": self.last_batch,
            "checks": self.checks,
            "warnings": self.warnings,
            "rollbacks": self.rollbacks,
        }
        for term, value in self._term_emas().items():
            payload[f"{term}_ema"] = value
        rss = rss_bytes()
        if rss is not None:
            payload["rss_mb"] = round(rss / 2**20, 2)
        return payload

    def report(self) -> dict[str, Any]:
        """The manifest ``health`` block: policy, trips, final EMAs."""
        block: dict[str, Any] = {
            "policy": self.policy,
            "check_every": self.check_every,
            "checks": self.checks,
            "warnings": self.warnings,
            "rollbacks": self.rollbacks,
            "diverged": self.diverged,
            "first_bad": dict(self.first_bad) if self.first_bad else None,
            "terms": self._term_emas(),
        }
        for name in ("health.grad_norm", "health.embedding_norm"):
            if name in self.metrics:
                summary = self.metrics.histogram(name).summary()
                if summary["count"]:
                    block[name.split(".", 1)[1]] = {
                        key: summary[key]
                        for key in ("count", "min", "max", "p50", "p99")
                    }
        return block


# -- poisoning test hook -----------------------------------------------

#: ``False`` means "environment not parsed yet" (``None`` is a valid
#: parse result: no poisoning requested).
_poison_cache: tuple[int, str | None] | None | bool = False


def reset_poison_cache() -> None:
    """Forget the parsed :data:`POISON_ENV` value (test isolation)."""
    global _poison_cache
    _poison_cache = False


def _poison_spec() -> tuple[int, str | None] | None:
    global _poison_cache
    if _poison_cache is False:
        raw = os.environ.get(POISON_ENV)
        if not raw:
            _poison_cache = None
        else:
            batch_text, _, name = raw.partition(":")
            try:
                _poison_cache = (int(batch_text), name or None)
            except ValueError:
                warnings.warn(
                    f"ignoring unparsable {POISON_ENV}={raw!r} "
                    "(expected '<batch>[:<array>]')",
                    RuntimeWarning,
                )
                _poison_cache = None
    return _poison_cache


def maybe_poison(
    batch_idx: int, arrays: Mapping[str, np.ndarray]
) -> None:
    """Write one NaN into a parameter array when this batch is poisoned.

    No-op (one cached ``None`` check) unless :data:`POISON_ENV` is set
    to ``"<batch>[:<array>]"`` — the divergence-test and CI-smoke hook.
    The poison lands in the *live* array (for HOGWILD workers, their
    shared-memory view), so detection exercises the same read path a
    real gradient-race NaN would take.
    """
    spec = _poison_spec()
    if spec is None or batch_idx != spec[0]:
        return
    batch, name = spec
    if name is not None and name in arrays:
        target = arrays[name]
    else:
        target = next(iter(arrays.values()))
    np.asarray(target).reshape(-1)[0] = np.nan
