"""Span-based pipeline tracing (the ``--trace`` CLI flag).

A :class:`Tracer` records a tree of nestable *spans* — named wall-clock
intervals with attributes — across the whole pipeline: graph build,
feature extraction, connected-pair sampling, the E-Step loss terms
(Eqs. 7-16), the D-Step (Eq. 26) and evaluation.  Traces serialise to

* **Chrome trace-event JSON** (:meth:`Tracer.write_chrome`) — load the
  file in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` to
  see one lane per process, and
* **compact JSONL** (:meth:`Tracer.write_jsonl`) — one span record per
  line, for offline aggregation (:func:`phase_totals`).

Instrumented library code never threads a tracer through call
signatures; it calls the module-level :func:`span` context manager,
which resolves the *active* tracer (a :mod:`contextvars` variable, see
:func:`use_tracer`).  When no tracer is active — the default — ``span``
returns a shared no-op object, so the disabled fast path costs one
context-variable read per call (the ``benchmarks/perf``
``--check-trace-overhead`` gate keeps it under the 5 % budget).

HOGWILD worker processes get their own tracer whose spans are written
to a per-worker spill file and merged back into the parent tracer at
join (:meth:`Tracer.merge`); each worker keeps its real ``pid``, so the
Chrome view shows one lane per worker.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterable, Iterator, Mapping

#: Schema tag written into every serialised trace.
TRACE_SCHEMA = "repro_trace/v1"

#: Span-record keys required by both serialisation formats.
RECORD_FIELDS = ("name", "ts", "dur", "pid", "tid", "id", "parent")


class _NullSpan:
    """Shared, reentrant no-op stand-in used when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        """Discard attributes (matching :meth:`Span.set`)."""


NULL_SPAN = _NullSpan()

_ACTIVE: ContextVar["Tracer | None"] = ContextVar("repro_tracer", default=None)


def current_tracer() -> "Tracer | None":
    """The tracer spans are currently recorded into, if any."""
    return _ACTIVE.get()


def span(name: str, **attrs: Any) -> "Span | _NullSpan":
    """Open a span on the active tracer (no-op when tracing is off).

    >>> with span("estep.L_topo", pairs=256) as sp:
    ...     sp.set(loss=0.5)   # attributes may be added before exit
    """
    tracer = _ACTIVE.get()
    if tracer is None or not tracer.enabled:
        return NULL_SPAN
    return Span(tracer, name, attrs)


def instant(name: str, **attrs: Any) -> None:
    """Record a zero-duration marker on the active tracer (no-op when off).

    Instants mark point events — a health warning, a stalled-worker
    flag, a rollback — on the same timeline as the spans, so the Chrome
    view shows *when* a health incident happened relative to the phase
    structure.
    """
    tracer = _ACTIVE.get()
    if tracer is not None and tracer.enabled:
        tracer.instant(name, **attrs)


@contextmanager
def use_tracer(tracer: "Tracer | None") -> Iterator["Tracer | None"]:
    """Make ``tracer`` the active tracer for the enclosed block."""
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


def activate(tracer: "Tracer | None"):
    """Set the active tracer; returns a token for :func:`deactivate`."""
    return _ACTIVE.set(tracer)


def deactivate(token) -> None:
    """Restore the active tracer saved by :func:`activate`."""
    _ACTIVE.reset(token)


class Span:
    """One live span; created by :func:`span`, closed by ``with``.

    Entering records the start time and links the span under the
    innermost open span of the same thread; exiting appends a plain
    *span record* dict to the tracer.  A span that exits through an
    exception is still recorded, with an ``error`` attribute.
    """

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "_start")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id: int | None = None
        self.parent_id: int | None = None
        self._start = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> bool:
        end = time.perf_counter()
        if exc_val is not None:
            self.attrs["error"] = repr(exc_val)
        self.tracer._pop(self, end)
        return False


class Tracer:
    """Collects span records; safe for use from multiple threads.

    Each thread keeps its own open-span stack, so spans opened on one
    thread nest under that thread's innermost span only.  Records are
    plain dicts with the :data:`RECORD_FIELDS` keys plus ``attrs``.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: list[dict[str, Any]] = []
        self.pid = os.getpid()
        # Map perf_counter readings onto the wall clock so traces from
        # different processes land on one comparable timeline.
        self.epoch = time.time() - time.perf_counter()
        self._lock = threading.Lock()
        self._stacks: dict[int, list[Span]] = {}
        self._tids: dict[int, int] = {}
        self._next_id = 1

    # -- recording ------------------------------------------------------

    def _stack(self) -> tuple[list[Span], int]:
        ident = threading.get_ident()
        stack = self._stacks.get(ident)
        if stack is None:
            with self._lock:
                stack = self._stacks.setdefault(ident, [])
                self._tids.setdefault(ident, len(self._tids))
        return stack, self._tids[ident]

    def _new_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def _push(self, sp: Span) -> None:
        stack, _tid = self._stack()
        sp.parent_id = stack[-1].span_id if stack else None
        sp.span_id = self._new_id()
        stack.append(sp)

    def _pop(self, sp: Span, end: float) -> None:
        stack, tid = self._stack()
        # Tolerate a mismatched pop (a span closed out of order) by
        # unwinding to the given span; correctness of the remaining
        # records matters more than punishing the caller.
        while stack and stack[-1] is not sp:
            stack.pop()
        if stack:
            stack.pop()
        record = {
            "name": sp.name,
            "ts": self.epoch + sp._start,
            "dur": max(end - sp._start, 0.0),
            "pid": self.pid,
            "tid": tid,
            "id": sp.span_id,
            "parent": sp.parent_id,
            "attrs": dict(sp.attrs),
        }
        with self._lock:
            self.records.append(record)

    def instant(self, name: str, **attrs: Any) -> None:
        """Append a zero-duration span record (a point-event marker).

        The record nests under the calling thread's innermost open span
        like any other child, serialises through both formats (Chrome
        renders ``dur=0`` as a zero-width slice), and aggregates in
        :func:`phase_totals` with ``total_s == 0`` but a live ``count``.
        """
        stack, tid = self._stack()
        record = {
            "name": name,
            "ts": self.epoch + time.perf_counter(),
            "dur": 0.0,
            "pid": self.pid,
            "tid": tid,
            "id": self._new_id(),
            "parent": stack[-1].span_id if stack else None,
            "attrs": dict(attrs),
        }
        with self._lock:
            self.records.append(record)

    # -- merging (HOGWILD worker lanes) ---------------------------------

    def merge(self, records: Iterable[Mapping[str, Any]]) -> int:
        """Adopt foreign span records (e.g. from a worker spill file).

        Span ids are remapped onto this tracer's id space so merged
        records cannot collide with native ones; ``pid``/``tid`` are
        preserved, which is what gives each worker its own lane.
        Returns the number of records merged.
        """
        records = [dict(r) for r in records if "name" in r]
        remap: dict[int, int] = {}
        for record in records:
            remap[record["id"]] = self._new_id()
        merged = []
        for record in records:
            record["id"] = remap[record["id"]]
            parent = record.get("parent")
            record["parent"] = remap.get(parent) if parent is not None else None
            merged.append(record)
        with self._lock:
            self.records.extend(merged)
        return len(merged)

    # -- serialisation --------------------------------------------------

    def snapshot(self) -> list[dict[str, Any]]:
        """A copy of all finished span records."""
        with self._lock:
            return [dict(r) for r in self.records]

    def to_chrome(self) -> dict[str, Any]:
        """The trace as a Chrome trace-event JSON object.

        Spans become complete (``ph: "X"``) events with microsecond
        ``ts``/``dur``; one metadata event names each process lane.
        Load the written file in Perfetto or ``chrome://tracing``.
        """
        records = self.snapshot()
        base = min((r["ts"] for r in records), default=0.0)
        events: list[dict[str, Any]] = []
        for pid in sorted({r["pid"] for r in records}):
            label = "repro" if pid == self.pid else f"worker pid={pid}"
            events.append(
                {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                 "args": {"name": label}}
            )
        for r in records:
            events.append(
                {
                    "name": r["name"],
                    "cat": "repro",
                    "ph": "X",
                    "ts": (r["ts"] - base) * 1e6,
                    "dur": r["dur"] * 1e6,
                    "pid": r["pid"],
                    "tid": r["tid"],
                    "args": dict(r["attrs"]),
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"schema": TRACE_SCHEMA},
        }

    def write_chrome(self, path: str | pathlib.Path) -> None:
        """Write the Chrome trace-event JSON form to ``path``."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle, separators=(",", ":"))
            handle.write("\n")

    def write_jsonl(self, path: str | pathlib.Path) -> None:
        """Write the compact JSONL form: a header line, then one span/line."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"schema": TRACE_SCHEMA}, handle,
                      separators=(",", ":"))
            handle.write("\n")
            for record in self.snapshot():
                json.dump(record, handle, separators=(",", ":"))
                handle.write("\n")

    def write(self, path: str | pathlib.Path) -> None:
        """Write by extension: ``.jsonl`` → compact, else Chrome JSON."""
        if str(path).endswith(".jsonl"):
            self.write_jsonl(path)
        else:
            self.write_chrome(path)


def read_trace(path: str | pathlib.Path) -> list[dict[str, Any]]:
    """Parse either serialised form back into span records.

    Chrome traces lose the parent links (``chrome://tracing`` nests by
    containment instead), so records read from that form have
    ``parent=None``; durations and lanes round-trip exactly.
    """
    path = pathlib.Path(path)
    with open(path, encoding="utf-8") as handle:
        head = handle.read(1)
        handle.seek(0)
        if head == "{" and not str(path).endswith(".jsonl"):
            data = json.load(handle)
            if "traceEvents" in data:
                records = []
                for i, event in enumerate(data["traceEvents"]):
                    if event.get("ph") != "X":
                        continue
                    records.append(
                        {
                            "name": event["name"],
                            "ts": event["ts"] / 1e6,
                            "dur": event["dur"] / 1e6,
                            "pid": event.get("pid", 0),
                            "tid": event.get("tid", 0),
                            "id": i + 1,
                            "parent": None,
                            "attrs": dict(event.get("args", {})),
                        }
                    )
                return records
            handle.seek(0)
        records = []
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "name" in record:
                records.append(record)
        return records


def phase_totals(
    records: Iterable[Mapping[str, Any]],
) -> dict[str, dict[str, float]]:
    """Aggregate span records into per-name totals.

    Returns ``{name: {"total_s", "self_s", "count"}}`` where ``self_s``
    excludes time covered by child spans (so a phase whose cost lives
    entirely in instrumented children reports ``self_s ≈ 0``).  Records
    without parent links (Chrome round-trips) contribute their full
    duration to both totals.
    """
    records = list(records)
    child_time: dict[int | None, float] = {}
    for r in records:
        parent = r.get("parent")
        if parent is not None:
            child_time[parent] = child_time.get(parent, 0.0) + r["dur"]
    totals: dict[str, dict[str, float]] = {}
    for r in records:
        entry = totals.setdefault(
            r["name"], {"total_s": 0.0, "self_s": 0.0, "count": 0}
        )
        entry["total_s"] += r["dur"]
        entry["self_s"] += max(r["dur"] - child_time.get(r["id"], 0.0), 0.0)
        entry["count"] += 1
    return totals
